package shred

// Differential tests: the streaming evaluator must reproduce the tree
// evaluator's instance exactly — same tuples, same null patterns — on the
// paper's running example, on generated workloads, and on random rules
// over random documents.

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"xkprop/internal/paperdata"
	"xkprop/internal/testutil"
	"xkprop/internal/transform"
	"xkprop/internal/witness"
	"xkprop/internal/workload"
	"xkprop/internal/xmltok"
	"xkprop/internal/xmltree"
)

// assertSameInstances compares the streaming result with the tree
// evaluator's per-rule instances via their canonical renderings.
func assertSameInstances(t *testing.T, tr *transform.Transformation, doc string) {
	t.Helper()
	tree, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatalf("tree parse: %v", err)
	}
	want := tr.Eval(tree)
	got, err := EvalStreamingString(tr, doc)
	if err != nil {
		t.Fatalf("streaming eval: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("table count: got %d, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		if g.String() != w.String() {
			t.Errorf("table %s:\nstreaming:\n%s\ntree:\n%s\ndoc:\n%s", name, g.String(), w.String(), doc)
		}
	}
}

func TestStreamingMatchesTreePaperExample(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	assertSameInstances(t, paperdata.Transform(), paperdata.Fig1XML)
}

func TestStreamingMatchesTreeWorkloadGrid(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	cfgs := []workload.Config{
		{Fields: 4, Depth: 2, Keys: 3},
		{Fields: 8, Depth: 3, Keys: 6},
		{Fields: 6, Depth: 2, Keys: 4, Width: 2},
		{Fields: 9, Depth: 3, Keys: 5, Width: 3},
	}
	for _, cfg := range cfgs {
		wl := workload.Generate(cfg)
		for _, fanout := range []int{1, 2, 3} {
			doc := wl.Document(fanout).XMLString()
			tr := transform.MustTransformation(wl.Rule)
			assertSameInstances(t, tr, doc)
		}
	}
}

// TestStreamingNullSubtrees: documents where paths match nothing must
// yield the same all-null products as the tree evaluator.
func TestStreamingNullSubtrees(t *testing.T) {
	tr := paperdata.Transform()
	docs := []string{
		`<r/>`,
		`<r><book isbn="1"/></r>`,
		`<r><book isbn="1"><title/></book></r>`,
		`<r><book isbn="1"><chapter number="2"/><chapter/></book></r>`,
		`<r><other><deep><book isbn="9"><chapter number="3"><name>x</name></chapter></book></deep></other></r>`,
	}
	for _, doc := range docs {
		assertSameInstances(t, tr, doc)
	}
}

// TestStreamingMatchesTreeRandom sweeps seeded random rules over random
// documents built from the rules' own label vocabulary, so paths both hit
// and miss, with attribute collisions forcing shared values.
func TestStreamingMatchesTreeRandom(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		_, rule := witness.RandomWorkload(rng)
		tr := transform.MustTransformation(rule)
		doc := randomDocFor(rng, tr)
		assertSameInstances(t, tr, doc)
	}
}

// randomDocFor builds a random document over the labels and attributes a
// transformation's paths mention (plus noise), rendered through xmltree
// so the string is well-formed.
func randomDocFor(rng *rand.Rand, tr *transform.Transformation) string {
	labels := []string{"a", "b", "c", "noise"}
	attrs := []string{"x", "y"}
	var build func(n *xmltree.Node, depth int)
	build = func(n *xmltree.Node, depth int) {
		for _, a := range attrs {
			if rng.Intn(3) > 0 {
				n.SetAttr(a, []string{"0", "1", "2"}[rng.Intn(3)])
			}
		}
		if rng.Intn(4) == 0 {
			n.AddText("t" + labels[rng.Intn(len(labels))])
		}
		if depth >= 4 {
			return
		}
		kids := rng.Intn(4)
		for i := 0; i < kids; i++ {
			c := xmltree.NewElement(labels[rng.Intn(len(labels))])
			n.AddChild(c)
			build(c, depth+1)
		}
	}
	root := xmltree.NewElement(labels[rng.Intn(len(labels))])
	build(root, 0)
	return xmltree.NewTree(root).XMLString()
}

// TestStreamingLineage: every emitted row carries lineage refs whose
// offsets point at '<' bytes of the source document.
func TestStreamingLineage(t *testing.T) {
	c, err := Compile(paperdata.Transform())
	if err != nil {
		t.Fatal(err)
	}
	doc := paperdata.Fig1XML
	var rows []Row
	ev := c.newEvaluator(0, func(ri int, r []Row) error {
		if c.rules[ri].rule.Schema.Name == "chapter" {
			rows = append(rows, r...)
		}
		return nil
	})
	if err := driveString(ev, doc); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no chapter rows")
	}
	for _, row := range rows {
		if len(row.Lin) == 0 {
			t.Fatalf("row %v has no lineage", row.Vals)
		}
		for _, ref := range row.Lin {
			if ref.Var == "" || ref.Path == "" {
				t.Errorf("incomplete ref %+v", ref)
			}
			if ref.Offset < 0 || int(ref.Offset) >= len(doc) {
				t.Errorf("ref offset %d out of document", ref.Offset)
				continue
			}
			if !strings.HasPrefix(ref.Path, "/@") && doc[ref.Offset] != '<' && !strings.Contains(ref.Path, "@") {
				t.Errorf("ref %+v: document byte %q, want '<'", ref, doc[ref.Offset])
			}
		}
	}
}

// driveString runs the evaluator alone over a document string, no
// pipeline, no validator.
func driveString(ev *evaluator, doc string) error {
	src := xmltok.New(strings.NewReader(doc), ev.c.in)
	for {
		tok, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmltok.StartElement:
			if err := ev.startElement(tok); err != nil {
				return err
			}
		case xmltok.EndElement:
			if err := ev.endElement(); err != nil {
				return err
			}
		case xmltok.CharData:
			if err := ev.charData(tok.Data); err != nil {
				return err
			}
		}
	}
}

package shred

// The pipeline: one goroutine owns the xmltok.Source and the streaming
// evaluator (and, when a key set is supplied, the stream validator — both
// consume the same single token pass); completed tuple blocks fan out to
// one worker goroutine per rule over bounded channels, gated by a
// semaphore of Options.Workers execution slots. Each rule's blocks are
// processed strictly in channel (= document) order by its single worker,
// so sink bytes are identical for -workers 1 and -workers N; parallelism
// comes from different rules progressing concurrently, never from
// reordering one rule's tuples.

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"expvar"

	"xkprop/internal/budget"
	"xkprop/internal/metrics"
	"xkprop/internal/rel"
	"xkprop/internal/stream"
	"xkprop/internal/transform"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltok"
)

// DefaultBatchSize is the tuple batch handed to sinks when Options leaves
// BatchSize zero.
const DefaultBatchSize = 256

// Options configures one Run.
type Options struct {
	// Workers caps concurrently executing rule workers (<=0 = GOMAXPROCS).
	// It never affects output bytes, only parallelism across rules.
	Workers int
	// BatchSize is the tuples per sink WriteBatch (<=0 = DefaultBatchSize).
	BatchSize int
	// Sigma, when non-nil, runs the stream key validator over the same
	// token pass; violations land in Result.StreamViolations.
	Sigma []xmlkey.Key
	// Covers maps table name → FDs to enforce online (typically the
	// propagated minimum cover). Tables absent from the map are shredded
	// without enforcement.
	Covers map[string][]rel.FD
	// Metrics receives shred.{tuples,batches,fd_checks,violations,
	// queue_depth}; nil publishes to a private throwaway set.
	Metrics *metrics.Set
	// Decoder selects the tokenizer: xmltok.DecoderFast (default, also
	// "") or xmltok.DecoderStd for the encoding/xml oracle. Output bytes
	// are identical either way; std exists for differential checking.
	Decoder string
}

// TableCount is one table's output tally.
type TableCount struct {
	Table   string `json:"table"`
	Tuples  int64  `json:"tuples"`
	Batches int64  `json:"batches"`
}

// Result is the outcome of one successful (possibly violating, never
// aborted) run. Abort-soundness: any error from Run means no Result at
// all — a partial violation list is never presented as the verdict.
type Result struct {
	Tables           []TableCount       `json:"tables"`
	Violations       []FDViolation      `json:"violations,omitempty"`
	StreamViolations []stream.Violation `json:"-"`
}

// Accepted reports whether the stream validator accepted the document
// (vacuously true when no key set was supplied).
func (r *Result) Accepted() bool { return len(r.StreamViolations) == 0 }

// OK reports a fully clean run: document accepted and no FD violated.
func (r *Result) OK() bool { return r.Accepted() && len(r.Violations) == 0 }

// Tuples sums the per-table tuple counts.
func (r *Result) Tuples() int64 {
	var n int64
	for _, t := range r.Tables {
		n += t.Tuples
	}
	return n
}

// Run compiles tr and shreds one document. See Compiled.Run.
func Run(ctx context.Context, tr *transform.Transformation, input io.Reader, sink Sink, opts Options) (*Result, error) {
	c, err := Compile(tr)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx, input, sink, opts)
}

// ruleState is one rule's worker-side state.
type ruleState struct {
	cr       *crule
	w        TableWriter
	guard    *fdGuard
	ch       chan []Row
	dedup    map[string]bool
	scratch  []byte // reusable tuple-key encoding buffer
	pending  []rel.Tuple
	tuples   int64
	batches  int64
	violSeen int64 // guard violations already counted into the metrics
	err      error
}

// pipelineMetrics bundles the exported counters.
type pipelineMetrics struct {
	tuples, batches, fdChecks, violations *expvar.Int
	queueDepth                            *expvar.Int
}

// Run shreds one document from input into sink. The context carries
// cancellation and an optional budget.Budget: MaxTuples and
// MaxFDIndexEntries abort (never evict — see the budget package),
// MaxStreamDepth bounds nesting, MaxViolations caps collected stream and
// FD violations combined with an abort once exceeded.
func (c *Compiled) Run(ctx context.Context, input io.Reader, sink Sink, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	set := opts.Metrics
	if set == nil {
		set = metrics.NewSet()
	}
	pm := &pipelineMetrics{
		tuples:     set.Counter("shred.tuples"),
		batches:    set.Counter("shred.batches"),
		fdChecks:   set.Counter("shred.fd_checks"),
		violations: set.Counter("shred.violations"),
		queueDepth: set.Gauge("shred.queue_depth"),
	}
	var maxTuples, maxFDEntries, maxDepth, maxViol int
	if b := budget.From(ctx); b != nil {
		maxTuples, maxFDEntries = b.MaxTuples, b.MaxFDIndexEntries
		maxDepth, maxViol = b.MaxStreamDepth, b.MaxViolations
	}
	// One tokenizer pass feeds evaluator and validator; opening it first
	// also rejects an unknown Options.Decoder before any sink is touched.
	src, err := xmltok.Open(opts.Decoder, input, c.in)
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var fdEntries, violTotal atomic.Int64
	states := make([]*ruleState, len(c.rules))
	for ri, cr := range c.rules {
		w, err := sink.Open(cr.rule.Schema)
		if err != nil {
			for _, st := range states[:ri] {
				st.w.Close()
			}
			return nil, err
		}
		st := &ruleState{
			cr: cr, w: w,
			ch:    make(chan []Row, 4),
			dedup: map[string]bool{},
		}
		if fds := opts.Covers[cr.rule.Schema.Name]; len(fds) > 0 {
			st.guard = newFDGuard(cr.rule.Schema.Name, cr.rule.Schema, fds,
				&fdEntries, maxFDEntries, &violTotal, maxViol)
		}
		states[ri] = st
	}
	closeWriters := func() error {
		var first error
		for _, st := range states {
			if err := st.w.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *ruleState) {
			defer wg.Done()
			for rows := range st.ch {
				pm.queueDepth.Add(-1)
				if st.err != nil || runCtx.Err() != nil {
					continue // drain so the producer never blocks
				}
				sem <- struct{}{}
				err := st.process(rows, batchSize, pm)
				<-sem
				if err != nil {
					st.err = err
					cancel()
				}
			}
			if st.err == nil && runCtx.Err() == nil {
				if err := st.flush(pm); err != nil {
					st.err = err
					cancel()
				}
			}
		}(st)
	}

	emit := func(ri int, rows []Row) error {
		if len(rows) == 0 {
			return nil
		}
		pm.queueDepth.Add(1)
		select {
		case states[ri].ch <- rows:
			return nil
		case <-runCtx.Done():
			pm.queueDepth.Add(-1)
			return runCtx.Err()
		}
	}

	var v *stream.Validator
	if opts.Sigma != nil {
		// The key paths compile into the shared interner, so the tokenizer's
		// fused label codes line up with the validator's NFAs too.
		v = stream.NewValidatorIn(c.in, opts.Sigma)
	}
	ev := c.newEvaluator(maxTuples, emit)
	runErr := c.drive(runCtx, src, ev, v, maxDepth, maxViol)
	if runErr == nil && !ev.rootClosed {
		var off int64
		if so, ok := src.(interface{ InputOffset() int64 }); ok {
			off = so.InputOffset()
		}
		runErr = &stream.DecodeError{Offset: off, Err: io.ErrUnexpectedEOF}
	}
	if runErr != nil {
		cancel() // workers skip their final flush
	}
	for _, st := range states {
		close(st.ch)
	}
	wg.Wait()
	closeErr := closeWriters()

	// A worker's typed error (budget, sink I/O) beats the bare
	// context.Canceled its cancellation caused upstream; a parent deadline
	// or cancellation stays authoritative.
	var werr error
	for _, st := range states {
		if st.err != nil && !errors.Is(st.err, context.Canceled) {
			werr = st.err
			break
		}
	}
	if werr != nil && (runErr == nil || errors.Is(runErr, context.Canceled)) {
		runErr = werr
	}
	if runErr != nil {
		return nil, runErr
	}
	if closeErr != nil {
		return nil, closeErr
	}

	res := &Result{}
	for _, st := range states {
		res.Tables = append(res.Tables, TableCount{
			Table: st.cr.rule.Schema.Name, Tuples: st.tuples, Batches: st.batches,
		})
		if st.guard != nil {
			res.Violations = append(res.Violations, st.guard.violations...)
		}
	}
	if v != nil {
		res.StreamViolations = v.Violations()
	}
	return res, nil
}

// drive owns the single tokenizer pass: every token is checked against
// the context, offered to the validator, and fed to the evaluator. Token
// offsets are the byte of the start tag's '<', so validator violations
// and evaluator lineage agree with the tree plane byte for byte.
func (c *Compiled) drive(ctx context.Context, src xmltok.Source, ev *evaluator, v *stream.Validator, maxDepth, maxViol int) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		tok, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return stream.WrapTokenError(err)
		}
		switch tok.Kind {
		case xmltok.StartElement:
			if maxDepth > 0 && len(ev.stack) >= maxDepth {
				return budget.Exceeded("shred", budget.StreamDepth, maxDepth)
			}
			if v != nil {
				if err := v.Feed(tok); err != nil {
					return err
				}
			}
			if err := ev.startElement(tok); err != nil {
				return err
			}
			if v != nil && maxViol > 0 && len(v.Violations()) >= maxViol {
				return budget.Exceeded("shred", budget.Violations, maxViol)
			}
		case xmltok.EndElement:
			if v != nil {
				if err := v.Feed(tok); err != nil {
					return err
				}
			}
			if err := ev.endElement(); err != nil {
				return err
			}
		case xmltok.CharData:
			if err := ev.charData(tok.Data); err != nil {
				return err
			}
		}
	}
}

// tupleKey mirrors rel.Relation.Dedup's identity: values plus null mask.
func tupleKey(t rel.Tuple) string { return string(appendTupleKey(nil, t)) }

// appendTupleKey appends the dedup identity of a tuple: "N\x00" per null,
// "V<decimal len>:<bytes>\x00" per value. The encoding is pinned by
// TestTupleKeyEncodingUnchanged — it must stay byte-equal to the
// fmt.Fprintf("V%d:%s\x00") form it replaced.
func appendTupleKey(dst []byte, t rel.Tuple) []byte {
	for _, v := range t {
		if v.Null {
			dst = append(dst, 'N', 0)
			continue
		}
		dst = append(dst, 'V')
		dst = strconv.AppendInt(dst, int64(len(v.S)), 10)
		dst = append(dst, ':')
		dst = append(dst, v.S...)
		dst = append(dst, 0)
	}
	return dst
}

// process handles one block on the rule's worker: online dedup (set
// semantics, first occurrence kept — matching the tree evaluator's
// Dedup), FD enforcement, then batched sink writes.
func (st *ruleState) process(rows []Row, batchSize int, pm *pipelineMetrics) error {
	for _, row := range rows {
		st.scratch = appendTupleKey(st.scratch[:0], row.Vals)
		if st.dedup[string(st.scratch)] {
			continue
		}
		st.dedup[string(st.scratch)] = true
		if st.guard != nil {
			before := st.guard.checks
			err := st.guard.check(row)
			pm.fdChecks.Add(st.guard.checks - before)
			if n := int64(len(st.guard.violations)); n > st.violSeen {
				pm.violations.Add(n - st.violSeen)
				st.violSeen = n
			}
			if err != nil {
				return err
			}
		}
		st.pending = append(st.pending, row.Vals)
		st.tuples++
		pm.tuples.Add(1)
		if len(st.pending) >= batchSize {
			if err := st.writeBatch(pm); err != nil {
				return err
			}
		}
	}
	return nil
}

func (st *ruleState) writeBatch(pm *pipelineMetrics) error {
	if len(st.pending) == 0 {
		return nil
	}
	batch := st.pending
	st.pending = nil // the sink may retain the slice
	if err := st.w.WriteBatch(batch); err != nil {
		return err
	}
	st.batches++
	pm.batches.Add(1)
	return nil
}

func (st *ruleState) flush(pm *pipelineMetrics) error {
	return st.writeBatch(pm)
}

// EvalStreaming shreds one document through the streaming pipeline into
// memory and canonicalizes each table (sorted, already deduplicated
// online), so the result is directly comparable with Rule.Eval over the
// parsed tree — the differential tests' contract.
func EvalStreaming(tr *transform.Transformation, input io.Reader) (map[string]*rel.Relation, error) {
	ms := NewMemorySink()
	if _, err := Run(context.Background(), tr, input, ms, Options{Workers: 1}); err != nil {
		return nil, err
	}
	out := ms.Relations()
	for _, r := range out {
		r.Sort()
	}
	return out, nil
}

// EvalStreamingString is EvalStreaming over a string.
func EvalStreamingString(tr *transform.Transformation, doc string) (map[string]*rel.Relation, error) {
	return EvalStreaming(tr, strings.NewReader(doc))
}

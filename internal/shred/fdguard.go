package shred

// Online enforcement of the propagated minimum cover: one hash index per
// FD maps the LHS projection of every complete tuple seen so far to its
// RHS projection. The null semantics mirror rel.CheckFD exactly —
// condition 1 (a tuple null on the LHS must be all-null on the RHS) is
// per-tuple, condition 2 compares only tuples free of nulls, keeping the
// first tuple of each LHS group as the witness.

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"xkprop/internal/budget"
	"xkprop/internal/rel"
)

// FDViolation is a propagated FD failing on the shredded instance. For
// condition 1 it carries the single offending tuple; for condition 2 the
// first tuple of the LHS group and the conflicting one, in arrival order.
type FDViolation struct {
	Table     string           `json:"table"`
	FD        string           `json:"fd"`
	Condition int              `json:"condition"`
	Tuples    []ViolatingTuple `json:"tuples"`
}

func (v FDViolation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: FD %s violated (condition %d)", v.Table, v.FD, v.Condition)
	for _, t := range v.Tuples {
		fmt.Fprintf(&b, "\n  tuple %s at offset %d", t.render(), t.Offset)
		for _, ref := range t.Lineage {
			fmt.Fprintf(&b, "\n    %s = %s @%d", ref.Var, ref.Path, ref.Offset)
		}
	}
	return b.String()
}

// ViolatingTuple is one conflicting tuple with its provenance: values
// (nil = NULL), the anchoring byte offset, and per-variable lineage.
type ViolatingTuple struct {
	Values  []*string `json:"values"`
	Offset  int64     `json:"offset"`
	Lineage []Ref     `json:"lineage"`
}

func (t ViolatingTuple) render() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		if v == nil {
			parts[i] = "NULL"
		} else {
			parts[i] = *v
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func violTuple(row Row) ViolatingTuple {
	vt := ViolatingTuple{Offset: row.Offset(), Lineage: row.Lin}
	vt.Values = make([]*string, len(row.Vals))
	for i, v := range row.Vals {
		if !v.Null {
			s := v.S
			vt.Values[i] = &s
		}
	}
	return vt
}

// guardEntry is the first tuple seen for one LHS projection.
type guardEntry struct {
	rhsKey string
	row    Row
}

// fdGuard enforces one rule's FDs. It is owned by that rule's worker
// goroutine; the entry and violation counters are shared across rules
// (atomics) so the budget caps bound the whole run.
type fdGuard struct {
	table      string
	fds        []rel.FD
	fdStr      []string
	lhsPos     [][]int // per FD, ascending LHS column positions
	rhsPos     [][]int // per FD, ascending RHS column positions
	idx        []map[string]guardEntry
	scratch    []byte
	entries    *atomic.Int64
	maxEntries int
	violTotal  *atomic.Int64
	maxViol    int
	checks     int64
	violations []FDViolation
}

func newFDGuard(table string, schema *rel.Schema, fds []rel.FD, entries *atomic.Int64, maxEntries int, violTotal *atomic.Int64, maxViol int) *fdGuard {
	g := &fdGuard{
		table: table, fds: fds,
		entries: entries, maxEntries: maxEntries,
		violTotal: violTotal, maxViol: maxViol,
	}
	for _, fd := range fds {
		g.fdStr = append(g.fdStr, fd.Format(schema))
		g.lhsPos = append(g.lhsPos, fd.Lhs.Positions())
		g.rhsPos = append(g.rhsPos, fd.Rhs.Positions())
		g.idx = append(g.idx, map[string]guardEntry{})
	}
	return g
}

// appendProjKey appends the projection of t onto the given positions in
// the guard's length-prefixed key encoding, "<decimal len>:<bytes>\x00"
// per column in ascending position order.
func appendProjKey(dst []byte, t rel.Tuple, pos []int) []byte {
	for _, i := range pos {
		dst = strconv.AppendInt(dst, int64(len(t[i].S)), 10)
		dst = append(dst, ':')
		dst = append(dst, t[i].S...)
		dst = append(dst, 0)
	}
	return dst
}

// check runs one tuple through every FD. Violations accumulate on the
// guard; a typed *budget.Error aborts the run when the index or violation
// cap is exhausted (abort, never evict — see budget.FDIndexEntries).
func (g *fdGuard) check(row Row) error {
	t := row.Vals
	for fi, fd := range g.fds {
		g.checks++
		if t.HasNullAt(fd.Lhs) {
			// Condition 1: null on the LHS demands an all-null RHS.
			if !t.AllNullAt(fd.Rhs) {
				if err := g.record(FDViolation{
					Table: g.table, FD: g.fdStr[fi], Condition: 1,
					Tuples: []ViolatingTuple{violTuple(row)},
				}); err != nil {
					return err
				}
			}
			continue
		}
		if t.HasNull() {
			// Condition 2 compares only tuples free of nulls.
			continue
		}
		// Both projections render into one scratch buffer; strings are
		// allocated only when a fresh entry is actually inserted.
		g.scratch = appendProjKey(g.scratch[:0], t, g.lhsPos[fi])
		split := len(g.scratch)
		g.scratch = appendProjKey(g.scratch, t, g.rhsPos[fi])
		lk, rk := g.scratch[:split], g.scratch[split:]
		if e, ok := g.idx[fi][string(lk)]; ok {
			if e.rhsKey != string(rk) {
				if err := g.record(FDViolation{
					Table: g.table, FD: g.fdStr[fi], Condition: 2,
					Tuples: []ViolatingTuple{violTuple(e.row), violTuple(row)},
				}); err != nil {
					return err
				}
			}
			continue
		}
		if n := g.entries.Add(1); g.maxEntries > 0 && n > int64(g.maxEntries) {
			return budget.Exceeded("shred fd enforcement", budget.FDIndexEntries, g.maxEntries)
		}
		g.idx[fi][string(lk)] = guardEntry{rhsKey: string(rk), row: row}
	}
	return nil
}

func (g *fdGuard) record(v FDViolation) error {
	g.violations = append(g.violations, v)
	if n := g.violTotal.Add(1); g.maxViol > 0 && n > int64(g.maxViol) {
		return budget.Exceeded("shred fd enforcement", budget.Violations, g.maxViol)
	}
	return nil
}

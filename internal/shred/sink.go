package shred

// Pluggable sinks. Each rule's worker owns its TableWriter exclusively,
// so writers need no internal locking; a Sink's Open may be called
// concurrently only if the Sink itself says so (the directory sinks here
// are Opened sequentially before the workers start).

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"encoding/json"

	"xkprop/internal/rel"
	"xkprop/internal/sqlgen"
)

// Sink opens one TableWriter per table rule.
type Sink interface {
	Open(s *rel.Schema) (TableWriter, error)
}

// TableWriter receives one rule's deduplicated tuples in deterministic
// document order, batch by batch. Close flushes.
type TableWriter interface {
	WriteBatch(rows []rel.Tuple) error
	Close() error
}

// Discard drops every tuple; the pipeline's Result still carries counts
// and violations. This is the sink behind the HTTP endpoint.
type Discard struct{}

type discardWriter struct{}

func (Discard) Open(*rel.Schema) (TableWriter, error) { return discardWriter{}, nil }
func (discardWriter) WriteBatch([]rel.Tuple) error    { return nil }
func (discardWriter) Close() error                    { return nil }

// MemorySink materializes each table as a rel.Relation — the oracle side
// of the differential tests and the backing of EvalStreaming.
type MemorySink struct {
	rels map[string]*rel.Relation
}

func NewMemorySink() *MemorySink {
	return &MemorySink{rels: map[string]*rel.Relation{}}
}

// Relations returns the materialized instance per table name.
func (m *MemorySink) Relations() map[string]*rel.Relation { return m.rels }

type memoryWriter struct{ r *rel.Relation }

func (m *MemorySink) Open(s *rel.Schema) (TableWriter, error) {
	r := rel.NewRelation(s)
	m.rels[s.Name] = r
	return &memoryWriter{r: r}, nil
}

func (w *memoryWriter) WriteBatch(rows []rel.Tuple) error {
	for _, t := range rows {
		if err := w.r.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

func (w *memoryWriter) Close() error { return nil }

// fileWriter is the shared buffered-file machinery of the directory sinks.
type fileWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func newFileWriter(path string) (*fileWriter, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &fileWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (w *fileWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// CSVSink writes <dir>/<table>.csv with a header row, fields escaped per
// RFC 4180 by the same rel.CSVEscape the in-memory renderer uses, and
// NULL as the empty field.
type CSVSink struct{ Dir string }

func NewCSVSink(dir string) *CSVSink { return &CSVSink{Dir: dir} }

type csvWriter struct {
	*fileWriter
}

func (s *CSVSink) Open(sc *rel.Schema) (TableWriter, error) {
	fw, err := newFileWriter(filepath.Join(s.Dir, sc.Name+".csv"))
	if err != nil {
		return nil, err
	}
	for i, a := range sc.Attrs {
		if i > 0 {
			fw.bw.WriteByte(',')
		}
		fw.bw.WriteString(rel.CSVEscape(a))
	}
	fw.bw.WriteByte('\n')
	return &csvWriter{fileWriter: fw}, nil
}

func (w *csvWriter) WriteBatch(rows []rel.Tuple) error {
	for _, t := range rows {
		for i, v := range t {
			if i > 0 {
				w.bw.WriteByte(',')
			}
			if !v.Null {
				w.bw.WriteString(rel.CSVEscape(v.S))
			}
		}
		if err := w.bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// NDJSONSink writes <dir>/<table>.ndjson, one JSON object per tuple with
// the schema's attribute order preserved and NULL as JSON null.
type NDJSONSink struct{ Dir string }

func NewNDJSONSink(dir string) *NDJSONSink { return &NDJSONSink{Dir: dir} }

type ndjsonWriter struct {
	*fileWriter
	attrs []json.RawMessage // pre-marshaled attribute names
}

func (s *NDJSONSink) Open(sc *rel.Schema) (TableWriter, error) {
	fw, err := newFileWriter(filepath.Join(s.Dir, sc.Name+".ndjson"))
	if err != nil {
		return nil, err
	}
	w := &ndjsonWriter{fileWriter: fw}
	for _, a := range sc.Attrs {
		key, err := json.Marshal(a)
		if err != nil {
			return nil, err
		}
		w.attrs = append(w.attrs, key)
	}
	return w, nil
}

func (w *ndjsonWriter) WriteBatch(rows []rel.Tuple) error {
	var b bytes.Buffer
	for _, t := range rows {
		b.Reset()
		b.WriteByte('{')
		for i, v := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			b.Write(w.attrs[i])
			b.WriteByte(':')
			if v.Null {
				b.WriteString("null")
			} else {
				val, err := json.Marshal(v.S)
				if err != nil {
					return err
				}
				b.Write(val)
			}
		}
		b.WriteString("}\n")
		if _, err := w.bw.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// SQLSink writes <dir>/<table>.sql: the table's CREATE TABLE (sqlgen's
// DDL for the configured dialect, no primary key — the shredded instance
// carries nulls) followed by one multi-row INSERT per batch with the same
// identifier quoting.
type SQLSink struct {
	Dir  string
	Opts sqlgen.Options
}

func NewSQLSink(dir string, opts sqlgen.Options) *SQLSink {
	return &SQLSink{Dir: dir, Opts: opts}
}

type sqlWriter struct {
	*fileWriter
	table sqlgen.Table
	opts  sqlgen.Options
}

func (s *SQLSink) Open(sc *rel.Schema) (TableWriter, error) {
	fw, err := newFileWriter(filepath.Join(s.Dir, sc.Name+".sql"))
	if err != nil {
		return nil, err
	}
	table := sqlgen.FromSchema(sc, rel.AttrSet{}, s.Opts)
	if _, err := fw.bw.WriteString(sqlgen.DDL([]sqlgen.Table{table}, s.Opts)); err != nil {
		fw.f.Close()
		return nil, err
	}
	return &sqlWriter{fileWriter: fw, table: table, opts: s.Opts}, nil
}

func (w *sqlWriter) WriteBatch(rows []rel.Tuple) error {
	stmt, err := sqlgen.Insert(w.table, rows, w.opts)
	if err != nil {
		return err
	}
	_, err = w.bw.WriteString(stmt)
	return err
}

// SinkFor builds the named directory sink: "csv", "ndjson" or "sql".
func SinkFor(format, dir string, opts sqlgen.Options) (Sink, error) {
	switch format {
	case "", "csv":
		return NewCSVSink(dir), nil
	case "ndjson":
		return NewNDJSONSink(dir), nil
	case "sql":
		return NewSQLSink(dir, opts), nil
	}
	return nil, fmt.Errorf("shred: unknown sink format %q (want %v)", format, SinkFormats())
}

// SinkFormats lists the directory sink formats, sorted.
func SinkFormats() []string {
	out := []string{"csv", "ndjson", "sql"}
	sort.Strings(out)
	return out
}

package shred

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xkprop/internal/budget"
	"xkprop/internal/core"
	"xkprop/internal/metrics"
	"xkprop/internal/rel"
	"xkprop/internal/sqlgen"
	"xkprop/internal/testutil"
	"xkprop/internal/transform"
	"xkprop/internal/workload"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltree"
)

// badDoc repeats a (isbn, number) pair with different chapter names: the
// book key breaks and the propagated FD inBook, number → name breaks with
// it.
const badDoc = `<db><book isbn="1"><chapter number="1"><name>A</name></chapter></book>` +
	`<book isbn="1"><chapter number="1"><name>B</name></chapter></book></db>`

const badKeys = `(ε, (//book, {@isbn}))
(//book, (chapter, {@number}))
(//book/chapter, (name, {}))
`

const badTransform = `rule chapter(inBook: y1, number: y2, name: y3) {
  ya := root / //book
  y1 := ya / @isbn
  yc := ya / chapter
  y2 := yc / @number
  y3 := yc / name
}`

func coverFor(t testing.TB, sigma []xmlkey.Key, rule *transform.Rule) []rel.FD {
	t.Helper()
	cover, err := core.NewEngine(sigma, rule).MinimumCoverCtx(context.Background())
	if err != nil {
		t.Fatalf("minimum cover: %v", err)
	}
	return cover
}

// TestWorkersByteIdentical: -workers 4 must produce byte-identical sink
// files to -workers 1 on the same document, for every sink format.
func TestWorkersByteIdentical(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	wl := workload.Generate(workload.Config{Fields: 8, Depth: 3, Keys: 6})
	doc := wl.Document(3).XMLString()
	tr := transform.MustTransformation(wl.Rule)
	for _, format := range SinkFormats() {
		outs := map[int]map[string]string{}
		for _, workers := range []int{1, 4} {
			dir := t.TempDir()
			sink, err := SinkFor(format, dir, sqlgen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), tr, strings.NewReader(doc), sink, Options{
				Workers: workers, BatchSize: 7, Sigma: wl.Sigma,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", format, workers, err)
			}
			if !res.OK() {
				t.Fatalf("%s workers=%d: unexpected violations: %+v", format, workers, res)
			}
			outs[workers] = readDir(t, dir)
		}
		if len(outs[1]) == 0 {
			t.Fatalf("%s: no output files", format)
		}
		for name, want := range outs[1] {
			if got := outs[4][name]; got != want {
				t.Errorf("%s: %s differs between workers=1 and workers=4:\n%q\nvs\n%q", format, name, want, got)
			}
		}
	}
}

func readDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

// TestExactTupleCounts: the single-chain workload's tuple count is
// fanout^depth exactly.
func TestExactTupleCounts(t *testing.T) {
	wl := workload.Generate(workload.Config{Fields: 8, Depth: 3, Keys: 6})
	tr := transform.MustTransformation(wl.Rule)
	for _, fanout := range []int{1, 2, 3} {
		doc := wl.Document(fanout).XMLString()
		res, err := Run(context.Background(), tr, strings.NewReader(doc), Discard{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1)
		for i := 0; i < 3; i++ {
			want *= int64(fanout)
		}
		if got := res.Tuples(); got != want {
			t.Errorf("fanout %d: %d tuples, want %d", fanout, got, want)
		}
	}
}

// TestViolatingFixture: the key-violating document must be rejected by
// the in-pass validator AND produce a typed FDViolation whose tuples
// carry values, offsets and lineage.
func TestViolatingFixture(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	sigma := xmlkey.MustParseSet(badKeys)
	tr := transform.MustParseString(badTransform)
	covers := map[string][]rel.FD{"chapter": coverFor(t, sigma, tr.Rules[0])}
	res, err := Run(context.Background(), tr, strings.NewReader(badDoc), Discard{}, Options{
		Sigma: sigma, Covers: covers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Error("validator accepted a duplicate @isbn document")
	}
	if len(res.Violations) == 0 {
		t.Fatal("no FDViolation for conflicting chapter names")
	}
	v := res.Violations[0]
	if v.Table != "chapter" || v.Condition != 2 || len(v.Tuples) != 2 {
		t.Fatalf("unexpected violation shape: %+v", v)
	}
	for _, vt := range v.Tuples {
		if len(vt.Lineage) == 0 {
			t.Errorf("violating tuple without lineage: %+v", vt)
		}
		if vt.Offset <= 0 || int(vt.Offset) >= len(badDoc) {
			t.Errorf("violating tuple offset %d out of range", vt.Offset)
		}
	}
	// The two conflicting tuples disagree on the name column only.
	a, b := v.Tuples[0], v.Tuples[1]
	if *a.Values[0] != *b.Values[0] || *a.Values[1] != *b.Values[1] {
		t.Errorf("tuples disagree on the LHS: %v vs %v", a.render(), b.render())
	}
	if *a.Values[2] == *b.Values[2] {
		t.Errorf("tuples agree on the RHS: %v vs %v", a.render(), b.render())
	}
}

// TestGuardAgreesWithCheckFD: on random instances the online guard's
// verdict per FD must match rel.CheckFD over the materialized relation.
func TestGuardAgreesWithCheckFD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sigma := xmlkey.MustParseSet(badKeys)
	tr := transform.MustParseString(badTransform)
	cover := coverFor(t, sigma, tr.Rules[0])
	for i := 0; i < 40; i++ {
		doc := randomBookDoc(rng)
		ms := NewMemorySink()
		res, err := Run(context.Background(), tr, strings.NewReader(doc), ms, Options{
			Covers: map[string][]rel.FD{"chapter": cover},
		})
		if err != nil {
			t.Fatal(err)
		}
		inst := ms.Relations()["chapter"]
		guardViolated := map[string]bool{}
		for _, v := range res.Violations {
			guardViolated[v.FD] = true
		}
		for _, fd := range cover {
			oracle := len(inst.CheckFD(fd)) > 0
			if guardViolated[fd.Format(inst.Schema)] != oracle {
				t.Errorf("doc %s: FD %s: guard=%v oracle=%v",
					doc, fd.Format(inst.Schema), guardViolated[fd.Format(inst.Schema)], oracle)
			}
		}
	}
}

func randomBookDoc(rng *rand.Rand) string {
	root := xmltree.NewElement("db")
	vals := []string{"1", "2"}
	names := []string{"A", "B"}
	books := 1 + rng.Intn(3)
	for i := 0; i < books; i++ {
		b := xmltree.NewElement("book")
		if rng.Intn(4) > 0 {
			b.SetAttr("isbn", vals[rng.Intn(len(vals))])
		}
		root.AddChild(b)
		chapters := rng.Intn(3)
		for j := 0; j < chapters; j++ {
			c := xmltree.NewElement("chapter")
			if rng.Intn(4) > 0 {
				c.SetAttr("number", vals[rng.Intn(len(vals))])
			}
			b.AddChild(c)
			if rng.Intn(4) > 0 {
				n := xmltree.NewElement("name")
				n.AddText(names[rng.Intn(len(names))])
				c.AddChild(n)
			}
		}
	}
	return xmltree.NewTree(root).XMLString()
}

// TestBudgetAborts: each cap aborts with its typed resource error, and an
// aborted run returns no Result (abort-soundness).
func TestBudgetAborts(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	wl := workload.Generate(workload.Config{Fields: 8, Depth: 3, Keys: 6})
	doc := wl.Document(3).XMLString()
	tr := transform.MustTransformation(wl.Rule)
	cover := coverFor(t, wl.Sigma, wl.Rule)
	cases := []struct {
		name     string
		b        budget.Budget
		resource budget.Resource
	}{
		{"tuples", budget.Budget{MaxTuples: 5}, budget.Tuples},
		{"fd-index", budget.Budget{MaxFDIndexEntries: 3}, budget.FDIndexEntries},
		{"depth", budget.Budget{MaxStreamDepth: 2}, budget.StreamDepth},
	}
	for _, c := range cases {
		ctx := budget.With(context.Background(), c.b)
		res, err := Run(ctx, tr, strings.NewReader(doc), Discard{}, Options{
			Sigma: wl.Sigma, Covers: map[string][]rel.FD{wl.Rule.Schema.Name: cover},
		})
		if res != nil {
			t.Errorf("%s: aborted run returned a partial Result", c.name)
		}
		var be *budget.Error
		if !errors.As(err, &be) || be.Resource != c.resource {
			t.Errorf("%s: err = %v, want *budget.Error{Resource: %q}", c.name, err, c.resource)
		}
	}
}

// TestMaxViolationsAborts: exceeding MaxViolations on FD violations
// aborts the run rather than growing the list.
func TestMaxViolationsAborts(t *testing.T) {
	sigma := xmlkey.MustParseSet(badKeys)
	tr := transform.MustParseString(badTransform)
	cover := coverFor(t, sigma, tr.Rules[0])
	// Many conflicting chapters produce several violations.
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 6; i++ {
		b.WriteString(`<book isbn="1"><chapter number="1"><name>N`)
		b.WriteString(string(rune('0' + i)))
		b.WriteString("</name></chapter></book>")
	}
	b.WriteString("</db>")
	ctx := budget.With(context.Background(), budget.Budget{MaxViolations: 2})
	res, err := Run(ctx, tr, strings.NewReader(b.String()), Discard{}, Options{
		Covers: map[string][]rel.FD{"chapter": cover},
	})
	var be *budget.Error
	if res != nil || !errors.As(err, &be) || be.Resource != budget.Violations {
		t.Errorf("got (%v, %v), want violations budget abort", res, err)
	}
}

// TestCancellation: a canceled context aborts promptly with its error and
// leaks no goroutines.
func TestCancellation(t *testing.T) {
	testutil.GuardGoroutines(t, 5*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := transform.MustParseString(badTransform)
	res, err := Run(ctx, tr, strings.NewReader(badDoc), Discard{}, Options{})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Errorf("got (%v, %v), want canceled", res, err)
	}
}

// TestMetricsExported: the pipeline moves all five shred.* metrics and
// queue_depth returns to zero.
func TestMetricsExported(t *testing.T) {
	set := metrics.NewSet()
	sigma := xmlkey.MustParseSet(badKeys)
	tr := transform.MustParseString(badTransform)
	cover := coverFor(t, sigma, tr.Rules[0])
	_, err := Run(context.Background(), tr, strings.NewReader(badDoc), Discard{}, Options{
		Sigma: sigma, Covers: map[string][]rel.FD{"chapter": cover}, Metrics: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := set.Counter("shred.tuples").Value(); n != 2 {
		t.Errorf("shred.tuples = %d, want 2", n)
	}
	if n := set.Counter("shred.batches").Value(); n < 1 {
		t.Errorf("shred.batches = %d, want >= 1", n)
	}
	if n := set.Counter("shred.fd_checks").Value(); n < 2 {
		t.Errorf("shred.fd_checks = %d, want >= 2", n)
	}
	if n := set.Counter("shred.violations").Value(); n < 1 {
		t.Errorf("shred.violations = %d, want >= 1", n)
	}
	if n := set.Gauge("shred.queue_depth").Value(); n != 0 {
		t.Errorf("shred.queue_depth = %d, want 0 after the run", n)
	}
}

// TestMalformedInput: truncated and multi-root documents are typed decode
// or format errors, never partial Results.
func TestMalformedInput(t *testing.T) {
	tr := transform.MustParseString(badTransform)
	for _, doc := range []string{"", "<db><book>", "<a/><b/>", "junk <a/>"} {
		res, err := Run(context.Background(), tr, strings.NewReader(doc), Discard{}, Options{})
		if res != nil || err == nil {
			t.Errorf("doc %q: got (%v, %v), want error and nil result", doc, res, err)
		}
	}
}

package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xkprop/internal/paperdata"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltree"
)

func TestStreamPaperDocumentOK(t *testing.T) {
	vs, err := ValidateString(paperdata.Fig1XML, paperdata.Keys())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("Fig 1 must satisfy Σ: %v", vs)
	}
}

func TestStreamDetectsDuplicate(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//book, {@isbn}))")
	vs, err := ValidateString(`<r><book isbn="1"/><book isbn="1"/></r>`, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Kind != xmlkey.DuplicateKey {
		t.Fatalf("want one DuplicateKey, got %v", vs)
	}
	if !strings.Contains(vs[0].String(), "duplicate key values") {
		t.Errorf("violation string: %s", vs[0])
	}
}

func TestStreamDetectsMissingAttribute(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//book, {@isbn}))")
	vs, err := ValidateString(`<r><book/></r>`, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Kind != xmlkey.MissingAttribute || vs[0].Attr != "isbn" {
		t.Fatalf("want one MissingAttribute, got %v", vs)
	}
	if !strings.Contains(vs[0].String(), "@isbn") {
		t.Errorf("violation string: %s", vs[0])
	}
}

func TestStreamRelativeScoping(t *testing.T) {
	sigma := xmlkey.MustParseSet("(//book, (chapter, {@number}))")
	ok := `<r><book><chapter number="1"/></book><book><chapter number="1"/></book></r>`
	if vs, _ := ValidateString(ok, sigma); len(vs) != 0 {
		t.Fatalf("cross-book duplicates are fine: %v", vs)
	}
	bad := `<r><book><chapter number="1"/><chapter number="1"/></book></r>`
	if vs, _ := ValidateString(bad, sigma); len(vs) != 1 {
		t.Fatalf("within-book duplicate must be caught: %v", vs)
	}
}

func TestStreamEmptyKeyPathSet(t *testing.T) {
	sigma := xmlkey.MustParseSet("(//book, (title, {}))")
	if vs, _ := ValidateString(`<r><book><title/><title/></book></r>`, sigma); len(vs) != 1 {
		t.Fatalf("two titles must violate the uniqueness key: %v", vs)
	}
	if vs, _ := ValidateString(`<r><book><title/></book></r>`, sigma); len(vs) != 0 {
		t.Fatalf("one title is fine: %v", vs)
	}
}

func TestStreamDescendantContexts(t *testing.T) {
	// Nested books: each opens its own context.
	sigma := xmlkey.MustParseSet("(//book, (chapter, {@n}))")
	src := `<r><book><chapter n="1"/><book><chapter n="1"/></book></book></r>`
	if vs, _ := ValidateString(src, sigma); len(vs) != 0 {
		t.Fatalf("nested book contexts must be independent: %v", vs)
	}
	// But the OUTER book sees the inner chapter too? No: (//book, (chapter,
	// ...)) targets are direct children only; the inner chapter is not a
	// child of the outer book.
	sigmaDeep := xmlkey.MustParseSet("(//book, (//chapter, {@n}))")
	if vs, _ := ValidateString(src, sigmaDeep); len(vs) != 1 {
		t.Fatalf("descendant target must see both chapters from the outer book: %v", vs)
	}
}

func TestStreamSelfTarget(t *testing.T) {
	// Target "//" includes the context node itself plus all descendants.
	sigma := xmlkey.MustParseSet("(//a, (//, {@id}))")
	if vs, _ := ValidateString(`<r><a id="1"><b id="1"/></a></r>`, sigma); len(vs) != 1 {
		t.Fatalf("a and its descendant b collide on @id: %v", vs)
	}
	if vs, _ := ValidateString(`<r><a id="1"><b id="2"/></a></r>`, sigma); len(vs) != 0 {
		t.Fatalf("distinct ids are fine: %v", vs)
	}
}

// TestStreamViolationOffset pins the documented Offset semantics: the byte
// position of the '<' of the offending target element. Regression test for
// the off-by-a-tag bug where the offset was read after the start-element
// token had been consumed (pointing past the tag instead of at it).
func TestStreamViolationOffset(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//book, {@isbn}))")

	// Duplicate: the second <book> is the offender. Leading text and
	// whitespace make sure CharData tokens don't shift the captured offset.
	src := `<r>text<book isbn="1"/>  <book isbn="1"/></r>`
	second := strings.LastIndex(src, "<book")
	vs, err := ValidateString(src, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Kind != xmlkey.DuplicateKey {
		t.Fatalf("want one DuplicateKey, got %v", vs)
	}
	if vs[0].Offset != int64(second) {
		t.Errorf("duplicate offset = %d, want %d (index of second <book)", vs[0].Offset, second)
	}

	// Missing attribute: the bare <book> is the offender.
	src = `<r><book isbn="1"/><book/></r>`
	bare := strings.Index(src, "<book/>")
	vs, err = ValidateString(src, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Kind != xmlkey.MissingAttribute {
		t.Fatalf("want one MissingAttribute, got %v", vs)
	}
	if vs[0].Offset != int64(bare) {
		t.Errorf("missing-attr offset = %d, want %d (index of bare <book/>)", vs[0].Offset, bare)
	}
}

func TestStreamSyntaxError(t *testing.T) {
	if _, err := ValidateString(`<r><unclosed>`, nil); err == nil {
		t.Error("syntax error must be reported")
	}
}

func TestStreamLimit(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//b, {@x}))")
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 100; i++ {
		sb.WriteString(`<b/>`)
	}
	sb.WriteString("</r>")
	v := NewValidator(sigma)
	v.SetLimit(5)
	if err := v.Run(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if len(v.Violations()) != 5 {
		t.Fatalf("limit ignored: %d violations", len(v.Violations()))
	}
	if v.OK() {
		t.Error("OK must be false")
	}
}

func TestStreamLargeFlatDocument(t *testing.T) {
	// 20k elements with unique keys stream cleanly.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sb, `<item id="%d"/>`, i)
	}
	sb.WriteString("</r>")
	sigma := xmlkey.MustParseSet("(ε, (//item, {@id}))")
	vs, err := ValidateString(sb.String(), sigma)
	if err != nil || len(vs) != 0 {
		t.Fatalf("err=%v violations=%d", err, len(vs))
	}
}

// TestStreamAgreesWithTreeValidator is the load-bearing equivalence test:
// on randomized documents and keys, the streaming validator's verdict
// (and per-kind violation counts) must match the tree-based validator's.
func TestStreamAgreesWithTreeValidator(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	labels := []string{"a", "b", "c"}
	attrs := []string{"x", "y"}
	randDoc := func() string {
		var sb strings.Builder
		var build func(depth int)
		build = func(depth int) {
			if depth >= 4 {
				return
			}
			for i := 0; i < r.Intn(3); i++ {
				l := labels[r.Intn(len(labels))]
				sb.WriteString("<" + l)
				for _, a := range attrs {
					if r.Intn(3) != 0 {
						fmt.Fprintf(&sb, ` %s="%d"`, a, r.Intn(3))
					}
				}
				sb.WriteString(">")
				build(depth + 1)
				sb.WriteString("</" + l + ">")
			}
		}
		sb.WriteString("<r>")
		build(0)
		sb.WriteString("</r>")
		return sb.String()
	}
	randKey := func() xmlkey.Key {
		randPath := func(maxLen int) string {
			var parts []string
			n := 1 + r.Intn(maxLen)
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					parts = append(parts, "/")
				}
				parts = append(parts, labels[r.Intn(len(labels))])
			}
			return strings.ReplaceAll(strings.Join(parts, "/"), "///", "//")
		}
		ctx := "ε"
		if r.Intn(2) == 0 {
			ctx = randPath(2)
		}
		var ks []string
		for _, a := range attrs {
			if r.Intn(2) == 0 {
				ks = append(ks, "@"+a)
			}
		}
		k, err := xmlkey.Parse(fmt.Sprintf("(%s, (%s, {%s}))", ctx, randPath(2), strings.Join(ks, ", ")))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	for trial := 0; trial < 500; trial++ {
		src := randDoc()
		nk := 1 + r.Intn(3)
		sigma := make([]xmlkey.Key, nk)
		for i := range sigma {
			sigma[i] = randKey()
		}
		streamVs, err := ValidateString(src, sigma)
		if err != nil {
			t.Fatal(err)
		}
		tree := xmltree.MustParseString(src)
		treeVs := xmlkey.ValidateAll(tree, sigma)

		count := func(vsKinds []xmlkey.ViolationKind) (miss, dup int) {
			for _, k := range vsKinds {
				if k == xmlkey.MissingAttribute {
					miss++
				} else {
					dup++
				}
			}
			return
		}
		var sKinds, tKinds []xmlkey.ViolationKind
		for _, v := range streamVs {
			sKinds = append(sKinds, v.Kind)
		}
		for _, v := range treeVs {
			tKinds = append(tKinds, v.Kind)
		}
		sm, sd := count(sKinds)
		tm, td := count(tKinds)
		if sm != tm || sd != td {
			t.Fatalf("trial %d: stream (miss=%d dup=%d) vs tree (miss=%d dup=%d)\nkeys: %v\ndoc: %s\nstream: %v\ntree: %v",
				trial, sm, sd, tm, td, sigma, src, streamVs, treeVs)
		}
	}
}

func BenchmarkStreamValidate(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, `<book isbn="%d"><chapter number="1"><name>x</name></chapter></book>`, i)
	}
	sb.WriteString("</r>")
	src := sb.String()
	sigma := paperdata.Keys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, err := ValidateString(src, sigma)
		if err != nil || len(vs) != 0 {
			b.Fatalf("err=%v violations=%d", err, len(vs))
		}
	}
}

// TestStreamOffsetCRLFAndUTF8 pins that Offset counts raw input bytes:
// CRLF line endings (which the decoder normalizes to \n in CharData) and
// multi-byte UTF-8 text ahead of the offender must not shift the reported
// position. The offset must land exactly on the '<' of the target element.
func TestStreamOffsetCRLFAndUTF8(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//book, {@isbn}))")

	// CRLF before and between elements: byte offsets include the \r bytes.
	src := "<r>\r\n  <book isbn=\"1\"/>\r\n  <book isbn=\"1\"/>\r\n</r>"
	vs, err := ValidateString(src, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Kind != xmlkey.DuplicateKey {
		t.Fatalf("crlf: want one DuplicateKey, got %v", vs)
	}
	if want := int64(strings.LastIndex(src, "<book")); vs[0].Offset != want {
		t.Errorf("crlf: offset = %d, want %d", vs[0].Offset, want)
	}
	if src[vs[0].Offset] != '<' {
		t.Errorf("crlf: byte at offset is %q, want '<'", src[vs[0].Offset])
	}

	// Multi-byte UTF-8 CharData (2-, 3- and 4-byte sequences) before the
	// offender: offsets are bytes, not runes.
	src = `<r>naïve — 文字 🎈<book isbn="1"/><book isbn="1"/></r>`
	vs, err = ValidateString(src, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("utf8: want one violation, got %v", vs)
	}
	if want := int64(strings.LastIndex(src, "<book")); vs[0].Offset != want {
		t.Errorf("utf8: offset = %d, want %d", vs[0].Offset, want)
	}
	if src[vs[0].Offset] != '<' {
		t.Errorf("utf8: byte at offset is %q, want '<'", src[vs[0].Offset])
	}

	// DecodeError.Offset is byte-accurate too: the decoder trips on the
	// malformed tag after multi-byte text, not before it.
	src = "<r>\r\n文字🎈</unclosed>"
	_, err = ValidateString(src, sigma)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("want DecodeError, got %v", err)
	}
	if want := int64(strings.Index(src, "</unclosed>")); de.Offset < want {
		t.Errorf("decode error offset = %d, want >= %d (start of bad tag)", de.Offset, want)
	}
}

package stream_test

import (
	"errors"
	"strings"
	"testing"

	"xkprop/internal/budget"
	"xkprop/internal/paperdata"
	"xkprop/internal/stream"
)

// FuzzStreamValidator runs the streaming validator over arbitrary byte
// soup with the paper's key set: it must never panic, and every failure
// must surface as a typed *DecodeError or *budget.Error.
func FuzzStreamValidator(f *testing.F) {
	for _, seed := range []string{
		paperdata.Fig1XML,
		`<r><book isbn="1"/><book isbn="1"/></r>`,
		`<r><book/></r>`,
		`<r><unclosed>`,
		`<r><a><b><c/></b></a></r>`,
		`not xml at all`,
		``,
		`<r>` + strings.Repeat("<d>", 40) + strings.Repeat("</d>", 40) + `</r>`,
	} {
		f.Add(seed)
	}
	sigma := paperdata.Keys()
	f.Fuzz(func(t *testing.T, in string) {
		v := stream.NewValidator(sigma)
		v.SetLimit(8)
		v.SetMaxDepth(64)
		err := v.Run(strings.NewReader(in))
		if err != nil {
			var de *stream.DecodeError
			var be *budget.Error
			if !errors.As(err, &de) && !errors.As(err, &be) {
				t.Fatalf("untyped error from Run(%q): %T %v", in, err, err)
			}
		}
		// Violations must stay within the configured limit.
		if n := len(v.Violations()); n > 8 {
			t.Fatalf("limit 8 exceeded: %d violations", n)
		}
	})
}

package stream

import (
	"math/bits"

	"xkprop/internal/xpath"
)

// PosSet is a PathNFA position set. For paths of up to 63 steps (every
// path in practice) it is a single uint64 bitmask — position p is bit p,
// the accept position is bit len(codes) — so copying, stepping and
// membership are word operations with no allocation. Longer paths fall
// back to an explicit position list in wide. The zero value is the empty
// set for both representations.
type PosSet struct {
	bits uint64
	wide []int32
}

// Empty reports whether the set holds no positions. Empty sets are dead:
// no sequence of steps can revive them, so callers may drop them.
func (s PosSet) Empty() bool { return s.bits == 0 && len(s.wide) == 0 }

// PathNFA is a compiled path expression of the language
// P ::= ε | l | P/P | //. Matching tracks a set of positions into the
// code sequence; position i with a DescCode step can absorb any label and
// stay. The ε-closure of every position (the positions reachable across
// "//" steps, which match the empty label sequence) is precomputed at
// compile time — eps[p] for the bitmask representation, wideEps[p] for
// the wide fallback — so Step is a loop over set bits or'ing precomputed
// masks: no maps, no recursion, no allocation on the narrow path. The
// zero value is the compiled ε path (accepted at Start). Shared by the
// validator and the shredding evaluator so both planes match rule and key
// paths identically.
type PathNFA struct {
	codes []uint32
	// eps[p] is the precomputed ε-closure of position p as a bitmask:
	// bit p, plus bits p+1.. for as long as the codes are DescCode.
	eps []uint64
	// wideEps replaces eps when len(codes) is 64 or more; wideEps[p] lists
	// the closure positions in DFS order (p, then the "//" chain after it).
	wideEps [][]int32
}

// CompilePath compiles p against the interner's code universe. All NFAs
// matched against the same label codes must share one interner.
func CompilePath(in *xpath.Interner, p xpath.Path) PathNFA {
	return newPathNFA(in.Codes(in.Intern(p)))
}

func newPathNFA(codes []uint32) PathNFA {
	n := len(codes)
	nfa := PathNFA{codes: codes}
	if n < 64 {
		eps := make([]uint64, n+1)
		eps[n] = uint64(1) << uint(n)
		for p := n - 1; p >= 0; p-- {
			eps[p] = uint64(1) << uint(p)
			if codes[p] == xpath.DescCode {
				eps[p] |= eps[p+1]
			}
		}
		nfa.eps = eps
	} else {
		wide := make([][]int32, n+1)
		wide[n] = []int32{int32(n)}
		for p := n - 1; p >= 0; p-- {
			wide[p] = []int32{int32(p)}
			if codes[p] == xpath.DescCode {
				wide[p] = append(wide[p], wide[p+1]...)
			}
		}
		nfa.wideEps = wide
	}
	return nfa
}

// Start returns the initial position set (ε-closure of position 0).
func (n PathNFA) Start() PosSet {
	if n.wideEps != nil {
		return PosSet{wide: n.wideEps[0]}
	}
	if n.eps == nil {
		// Zero-value NFA: the ε path, whose only position is its accept.
		return PosSet{bits: 1}
	}
	return PosSet{bits: n.eps[0]}
}

// Step advances the position set over one element label code (an
// interner label code, or UnknownLabel for labels outside the universe).
// The input set is never mutated; Step on the narrow representation does
// not allocate.
func (n PathNFA) Step(s PosSet, code uint32) PosSet {
	if n.wideEps != nil {
		return n.stepWide(s, code)
	}
	var out uint64
	// Mask off the accept position: it has no outgoing step. For the
	// zero-value (ε) NFA the mask is empty and eps is never touched.
	for b := s.bits & (uint64(1)<<uint(len(n.codes)) - 1); b != 0; b &= b - 1 {
		p := bits.TrailingZeros64(b)
		switch c := n.codes[p]; {
		case c == xpath.DescCode:
			out |= n.eps[p] // absorb the label, stay (closure includes p)
		case c == code:
			out |= n.eps[p+1]
		}
	}
	return PosSet{bits: out}
}

func (n PathNFA) stepWide(s PosSet, code uint32) PosSet {
	var out []int32
	seen := make([]bool, len(n.codes)+1)
	add := func(p int32) {
		for _, q := range n.wideEps[p] {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	for _, p := range s.wide {
		if int(p) >= len(n.codes) {
			continue
		}
		switch c := n.codes[p]; {
		case c == xpath.DescCode:
			add(p)
		case c == code:
			add(p + 1)
		}
	}
	return PosSet{wide: out}
}

// Accepted reports whether the position set contains the final position.
func (n PathNFA) Accepted(s PosSet) bool {
	if n.wideEps != nil {
		last := int32(len(n.codes))
		for _, p := range s.wide {
			if p == last {
				return true
			}
		}
		return false
	}
	return s.bits&(uint64(1)<<uint(len(n.codes))) != 0
}

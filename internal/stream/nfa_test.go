package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xkprop/internal/paperdata"
	"xkprop/internal/xpath"
)

// refNFA is the pre-optimization PathNFA matcher — map-based recursive
// ε-closure computed on every call — kept verbatim as the reference that
// TestPathNFAMatchesReference holds the precomputed-closure
// implementation to.
type refNFA struct {
	codes []uint32
}

func (n refNFA) start() []int { return n.closure([]int{0}) }

func (n refNFA) closure(pos []int) []int {
	seen := make(map[int]bool, len(pos))
	var out []int
	var add func(p int)
	add = func(p int) {
		if seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p)
		if p < len(n.codes) && n.codes[p] == xpath.DescCode {
			add(p + 1)
		}
	}
	for _, p := range pos {
		add(p)
	}
	return out
}

func (n refNFA) step(pos []int, code uint32) []int {
	var next []int
	for _, p := range pos {
		if p >= len(n.codes) {
			continue
		}
		switch s := n.codes[p]; {
		case s == xpath.DescCode:
			next = append(next, p)
		case s == code:
			next = append(next, p+1)
		}
	}
	return n.closure(next)
}

func (n refNFA) accepted(pos []int) bool {
	for _, p := range pos {
		if p == len(n.codes) {
			return true
		}
	}
	return false
}

// positions decodes a PosSet into a sorted position list, covering both
// representations.
func positions(n PathNFA, s PosSet) []int {
	var out []int
	if n.wideEps != nil {
		for _, p := range s.wide {
			out = append(out, int(p))
		}
	} else {
		for p := 0; p < 64; p++ {
			if s.bits&(uint64(1)<<uint(p)) != 0 {
				out = append(out, p)
			}
		}
	}
	sort.Ints(out)
	return out
}

func sortedCopy(pos []int) []int {
	out := append([]int(nil), pos...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstReference drives both implementations over one label-code
// sequence and fails on the first divergence in position sets,
// acceptance, or emptiness.
func checkAgainstReference(t *testing.T, desc string, codes []uint32, seq []uint32) {
	t.Helper()
	nfa := newPathNFA(codes)
	ref := refNFA{codes: codes}
	set := nfa.Start()
	rset := ref.start()
	if got, want := positions(nfa, set), sortedCopy(rset); !equalInts(got, want) {
		t.Fatalf("%s: Start: got %v, want %v", desc, got, want)
	}
	if nfa.Accepted(set) != ref.accepted(rset) {
		t.Fatalf("%s: Start acceptance diverges", desc)
	}
	for i, code := range seq {
		set = nfa.Step(set, code)
		rset = ref.step(rset, code)
		if got, want := positions(nfa, set), sortedCopy(rset); !equalInts(got, want) {
			t.Fatalf("%s: step %d (code %d): got %v, want %v", desc, i, code, got, want)
		}
		if nfa.Accepted(set) != ref.accepted(rset) {
			t.Fatalf("%s: step %d (code %d): acceptance diverges (positions %v)",
				desc, i, code, positions(nfa, set))
		}
		if set.Empty() != (len(rset) == 0) {
			t.Fatalf("%s: step %d: emptiness diverges", desc, i)
		}
	}
}

// TestPathNFAMatchesReference holds the precomputed-ε-closure NFA to the
// old map-based implementation, position set for position set, over the
// paper's key paths and randomized code sequences — including paths long
// enough to force the wide (>63 positions) fallback.
func TestPathNFAMatchesReference(t *testing.T) {
	in := xpath.NewInterner()

	type c struct {
		desc  string
		codes []uint32
	}
	var cases []c
	for _, k := range paperdata.Keys() {
		cases = append(cases, c{"context " + k.String(), in.Codes(in.Intern(k.Context))})
		cases = append(cases, c{"target " + k.String(), in.Codes(in.Intern(k.Target))})
	}

	r := rand.New(rand.NewSource(47))
	const nLabels = 6
	randCodes := func(n int) []uint32 {
		codes := make([]uint32, n)
		for i := range codes {
			if r.Intn(3) == 0 {
				codes[i] = xpath.DescCode
			} else {
				codes[i] = uint32(1 + r.Intn(nLabels))
			}
		}
		return codes
	}
	for i := 0; i < 50; i++ {
		cases = append(cases, c{fmt.Sprintf("rand %d", i), randCodes(1 + r.Intn(8))})
	}
	// Around and beyond the 64-position narrow limit.
	for _, n := range []int{60, 62, 63, 64, 70, 90} {
		cases = append(cases, c{fmt.Sprintf("long %d", n), randCodes(n)})
	}
	cases = append(cases, c{"empty (ε)", nil})

	// Step codes: in-universe labels plus the unknown-label sentinel. The
	// paperdata paths were interned first, so small codes hit them too.
	stepCodes := make([]uint32, 0, nLabels+1)
	for l := uint32(1); l <= nLabels; l++ {
		stepCodes = append(stepCodes, l)
	}
	stepCodes = append(stepCodes, UnknownLabel)

	for _, tc := range cases {
		for trial := 0; trial < 20; trial++ {
			seq := make([]uint32, r.Intn(2*len(tc.codes)+8))
			for i := range seq {
				seq[i] = stepCodes[r.Intn(len(stepCodes))]
			}
			checkAgainstReference(t, tc.desc, tc.codes, seq)
		}
	}
}

// TestPathNFAZeroValue pins that the zero value is the compiled ε path.
func TestPathNFAZeroValue(t *testing.T) {
	var n PathNFA
	s := n.Start()
	if !n.Accepted(s) {
		t.Fatal("zero-value NFA must accept at Start (ε path)")
	}
	s = n.Step(s, 7)
	if !s.Empty() || n.Accepted(s) {
		t.Fatal("ε path must die on any step")
	}
}

package stream

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltok"
)

// TestStreamSteadyStateAllocs pins the lazy-path optimization: elements
// that are neither context nor target nodes must not allocate at all in
// steady state — in particular v.path() must not be rendered per start
// tag (that was one string join per element). The document below opens
// and closes plenty of non-matching structure; after one warm-up pass
// (frame slices, context pool, tokenizer buffers), a full tokenize+feed
// pass must run allocation-free.
func TestStreamSteadyStateAllocs(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//book, {@isbn}))")
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 50; i++ {
		sb.WriteString(`<shelf row="9"><slot><empty/></slot></shelf>`)
	}
	sb.WriteString("</r>")
	doc := []byte(sb.String())

	v := NewValidator(sigma)
	rd := bytes.NewReader(doc)
	tk := xmltok.New(rd, v.in)
	pass := func() {
		rd.Reset(doc)
		tk.Reset(rd)
		for {
			tok, err := tk.Next()
			if err != nil {
				return
			}
			if err := v.Feed(tok); err != nil {
				t.Fatal(err)
			}
		}
	}
	pass() // warm up pools and label cache
	if avg := testing.AllocsPerRun(50, pass); avg != 0 {
		t.Fatalf("steady-state validation of non-matching elements allocates %.1f/op, want 0", avg)
	}
	if !v.OK() {
		t.Fatalf("unexpected violations: %v", v.Violations())
	}
}

// TestStreamTupleEncodingUnchanged pins the key-tuple encoding byte for
// byte against the fmt.Fprintf("%d:%s\x00") form appendTupleField
// replaced: equal tuples define duplicate keys, so the encoding is part
// of the validator's observable behavior.
func TestStreamTupleEncodingUnchanged(t *testing.T) {
	vals := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("1:2"),
		[]byte("with\x00nul"),
		[]byte("naïve 文字 🎈"),
		bytes.Repeat([]byte("x"), 1234), // multi-digit length prefix
	}
	var want strings.Builder
	var got []byte
	for _, val := range vals {
		fmt.Fprintf(&want, "%d:%s\x00", len(val), val)
		got = appendTupleField(got, val)
	}
	if string(got) != want.String() {
		t.Fatalf("tuple encoding changed:\n got %q\nwant %q", got, want.String())
	}
}

// TestStreamTupleNoFalseCollisions exercises the length-prefixing through
// the validator: values crafted so naive concatenation would collide must
// not be reported as duplicates, and genuinely equal tuples must be.
func TestStreamTupleNoFalseCollisions(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//b, {@x, @y}))")
	// ("ab","c") vs ("a","bc"): same concatenation, different tuples.
	ok := `<r><b x="ab" y="c"/><b x="a" y="bc"/></r>`
	if vs, err := ValidateString(ok, sigma); err != nil || len(vs) != 0 {
		t.Fatalf("distinct tuples flagged: err=%v vs=%v", err, vs)
	}
	dup := `<r><b x="ab" y="c"/><b x="ab" y="c"/></r>`
	vs, err := ValidateString(dup, sigma)
	if err != nil || len(vs) != 1 || vs[0].Kind != xmlkey.DuplicateKey {
		t.Fatalf("equal tuples not flagged: err=%v vs=%v", err, vs)
	}
}

// TestStreamDecoderSelection runs the same violating document through
// both decoders and demands identical violation lists, offsets included.
func TestStreamDecoderSelection(t *testing.T) {
	sigma := xmlkey.MustParseSet("(ε, (//book, {@isbn}))")
	src := "<r>\r\n<!-- c --><book isbn=\"1\"/><book isbn=\"1\"/><book/></r>"
	var got [2][]Violation
	for i, dec := range []string{xmltok.DecoderFast, xmltok.DecoderStd} {
		v := NewValidator(sigma)
		if err := v.SetDecoder(dec); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(strings.NewReader(src)); err != nil {
			t.Fatalf("%s: %v", dec, err)
		}
		got[i] = v.Violations()
	}
	if fmt.Sprint(got[0]) != fmt.Sprint(got[1]) {
		t.Fatalf("decoders disagree:\nfast: %v\nstd:  %v", got[0], got[1])
	}
	if len(got[0]) != 2 {
		t.Fatalf("want 2 violations, got %v", got[0])
	}
	if err := NewValidator(sigma).SetDecoder("bogus"); err == nil {
		t.Fatal("SetDecoder must reject unknown names")
	}
}

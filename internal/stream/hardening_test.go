package stream

// Hardening tests: depth caps, typed errors on broken streams, the
// Violation.Offset regression across non-element tokens, and the whitebox
// guarantee that a saturated violation limit stops matching work.

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xkprop/internal/budget"
	"xkprop/internal/faultinject"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltok"
)

func isbnSigma(t *testing.T) []xmlkey.Key {
	t.Helper()
	k, err := xmlkey.Parse("(ε, (//book, {@isbn}))")
	if err != nil {
		t.Fatal(err)
	}
	return []xmlkey.Key{k}
}

func TestStreamMaxDepth(t *testing.T) {
	sigma := isbnSigma(t)
	deep := "<r>" + strings.Repeat("<d>", 10) + strings.Repeat("</d>", 10) + "</r>"

	v := NewValidator(sigma)
	v.SetMaxDepth(5)
	err := v.Run(strings.NewReader(deep))
	var be *budget.Error
	if !errors.As(err, &be) || be.Resource != budget.StreamDepth || be.Limit != 5 {
		t.Fatalf("err = %v, want stream-depth budget error with limit 5", err)
	}

	// At or under the cap the document passes.
	v = NewValidator(sigma)
	v.SetMaxDepth(11)
	if err := v.Run(strings.NewReader(deep)); err != nil {
		t.Fatalf("depth 11 under cap 11 must pass: %v", err)
	}
}

func TestStreamBudgetDepthAndViolations(t *testing.T) {
	sigma := isbnSigma(t)

	// Budget depth caps like SetMaxDepth, taking the tighter of the two.
	v := NewValidator(sigma)
	v.SetMaxDepth(100)
	ctx := budget.With(context.Background(), budget.Budget{MaxStreamDepth: 3})
	deep := "<r><a><b><c/></b></a></r>"
	err := v.RunCtx(ctx, strings.NewReader(deep))
	var be *budget.Error
	if !errors.As(err, &be) || be.Resource != budget.StreamDepth || be.Limit != 3 {
		t.Fatalf("err = %v, want stream-depth budget error with limit 3", err)
	}

	// MaxViolations aborts with an error — unlike SetLimit's quiet
	// saturation — and keeps the violations found so far.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 10; i++ {
		sb.WriteString(`<book isbn="dup"/>`)
	}
	sb.WriteString("</r>")
	v = NewValidator(sigma)
	ctx = budget.With(context.Background(), budget.Budget{MaxViolations: 4})
	err = v.RunCtx(ctx, strings.NewReader(sb.String()))
	if !errors.As(err, &be) || be.Resource != budget.Violations || be.Limit != 4 {
		t.Fatalf("err = %v, want violations budget error with limit 4", err)
	}
	if len(v.Violations()) != 4 {
		t.Fatalf("violations kept = %d, want 4", len(v.Violations()))
	}
}

func TestStreamRunCtxCancelled(t *testing.T) {
	sigma := isbnSigma(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v := NewValidator(sigma)
	if err := v.RunCtx(ctx, strings.NewReader("<r/>")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStreamTruncatedDocumentTypedError(t *testing.T) {
	sigma := isbnSigma(t)
	v := NewValidator(sigma)
	err := v.Run(strings.NewReader(`<r><book isbn="1"><unclosed>`))
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T %v, want *DecodeError", err, err)
	}
	if de.Offset <= 0 {
		t.Fatalf("DecodeError.Offset = %d, want > 0", de.Offset)
	}
	var se *xml.SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("DecodeError must unwrap to the decoder's *xml.SyntaxError, got %v", de.Err)
	}
}

func TestStreamReaderFailureMidDocument(t *testing.T) {
	sigma := isbnSigma(t)
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 50; i++ {
		sb.WriteString(`<book isbn="dup"/>`)
	}
	sb.WriteString("</r>")
	src := sb.String()

	fr := &faultinject.FailingReader{R: strings.NewReader(src), FailAt: int64(len(src)) / 2}
	v := NewValidator(sigma)
	err := v.Run(fr)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T %v, want *DecodeError", err, err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("DecodeError must unwrap to the reader's error, got %v", de.Err)
	}
	// Violations found before the connection dropped are retained.
	if len(v.Violations()) == 0 {
		t.Fatal("violations found before the failure must be retained")
	}
	for _, viol := range v.Violations() {
		if viol.Offset >= int64(len(src))/2+1024 {
			t.Fatalf("violation offset %d lies beyond the delivered bytes", viol.Offset)
		}
	}
}

// TestStreamOffsetAcrossNonElementTokens pins that Violation.Offset points
// at the '<' of the offending start tag even when comments, processing
// instructions, CDATA and character data precede it — the decoder offset
// is captured before Token(), and every non-element token must leave that
// bookkeeping intact.
func TestStreamOffsetAcrossNonElementTokens(t *testing.T) {
	sigma := isbnSigma(t)
	prefix := `<r><!-- c1 --><?pi data?><book isbn="1"/>text<![CDATA[ <fake> ]]><!-- c2 -->`
	second := `<book isbn="1"/>`
	src := prefix + second + `</r>`
	v := NewValidator(sigma)
	if err := v.Run(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	vs := v.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if want := int64(len(prefix)); vs[0].Offset != want {
		t.Fatalf("Offset = %d, want %d (the '<' of the duplicate book)", vs[0].Offset, want)
	}
}

// TestStreamLimitStopsWork is the whitebox check that a saturated limit
// stops matching: elements opened after saturation must not allocate
// frames (skipDepth bookkeeping only), and closing them must not pop real
// frames.
func TestStreamLimitStopsWork(t *testing.T) {
	sigma := isbnSigma(t)
	v := NewValidator(sigma)
	v.SetLimit(1)

	var sb strings.Builder
	sb.WriteString(`<r><book isbn="1"/><book isbn="1"/>`)
	for i := 0; i < 100; i++ {
		sb.WriteString(fmt.Sprintf(`<book isbn="%d"><x><y/></x></book>`, i))
	}
	sb.WriteString("</r>")

	src := xmltok.New(strings.NewReader(sb.String()), v.in)
	sawSkip := false
	for {
		tok, err := src.Next()
		if err != nil {
			break
		}
		switch tok.Kind {
		case xmltok.StartElement:
			wasSaturated := v.saturated()
			before := len(v.stack)
			v.startElement(tok)
			if wasSaturated && len(v.stack) != before {
				t.Fatal("frame pushed after the violation limit saturated")
			}
			if v.skipDepth > 0 {
				sawSkip = true
			}
		case xmltok.EndElement:
			v.endElement()
		}
	}
	if len(v.Violations()) != 1 {
		t.Fatalf("violations = %d, want exactly the limit (1)", len(v.Violations()))
	}
	if !sawSkip {
		t.Fatal("saturation never engaged the skip path")
	}
	if v.skipDepth != 0 || len(v.stack) != 0 {
		t.Fatalf("unbalanced shutdown: skipDepth=%d stack=%d", v.skipDepth, len(v.stack))
	}
}

// Package stream validates XML keys against a document in streaming
// fashion (one SAX-style pass over encoding/xml tokens) without
// materializing the tree. The paper's motivating scenario is large,
// fairly regular XML being transmitted for relational import; a consumer
// can reject a non-conforming feed the moment a key breaks, holding in
// memory only the open-element stack and, per active context, the
// key-value tuples seen so far (the minimum any sound checker must
// retain).
//
// Matching of the path language P ::= ε | l | P/P | // is performed
// incrementally: every path expression compiles to a position-set NFA
// ("//" = a position that may absorb any label) pushed along the element
// stack, so each start-element costs O(|Σ| · depth · |paths|) in the
// worst case and far less in practice.
package stream

import (
	"context"
	"fmt"
	"io"
	"strings"

	"encoding/xml"

	"xkprop/internal/budget"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xpath"
)

// DecodeError reports the stream breaking mid-document — malformed or
// truncated XML, or the underlying io.Reader failing. Offset is the byte
// position the decoder had reached; Err (via Unwrap) is the decoder's or
// reader's error, so errors.Is sees io.ErrUnexpectedEOF and friends.
type DecodeError struct {
	Offset int64
	Err    error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("stream: decode error at offset %d: %v", e.Offset, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// Violation is a key violation detected mid-stream.
type Violation struct {
	Key xmlkey.Key
	// Kind mirrors xmlkey's classification.
	Kind xmlkey.ViolationKind
	// Attr is the missing attribute for MissingAttribute violations.
	Attr string
	// Offset is the byte position in the input where the offending target
	// element's start tag begins (the position of its '<').
	Offset int64
	// ContextPath and TargetPath are the concrete label paths from the
	// document root, for diagnostics.
	ContextPath string
	TargetPath  string
}

func (v Violation) String() string {
	name := v.Key.Name
	if name == "" {
		name = v.Key.String()
	}
	switch v.Kind {
	case xmlkey.MissingAttribute:
		return fmt.Sprintf("%s: target /%s (context /%s) at offset %d lacks @%s",
			name, v.TargetPath, v.ContextPath, v.Offset, v.Attr)
	default:
		return fmt.Sprintf("%s: duplicate key values for target /%s under context /%s at offset %d",
			name, v.TargetPath, v.ContextPath, v.Offset)
	}
}

// Validator validates a fixed key set over one streamed document.
type Validator struct {
	keys []compiledKey
	// in is the path universe the key paths were compiled against; element
	// labels are translated to its integer codes once per start tag.
	in *xpath.Interner
	// stack of open elements.
	stack []*frame
	// violations collected so far.
	violations []Violation
	// limit stops collecting after this many violations (0 = no limit).
	limit int
	// maxDepth rejects documents nesting deeper than this many open
	// elements (0 = no cap).
	maxDepth int
	// skipDepth counts open elements entered after the violation limit
	// saturated; they are tracked for stack balance only, with no NFA work.
	skipDepth int
}

// compiledKey precompiles a key's paths.
type compiledKey struct {
	key     xmlkey.Key
	context PathNFA
	target  PathNFA
}

// UnknownLabel marks an element label the interner has never seen: no
// compiled step can equal it (label codes are >= 1 and it is not DescCode),
// so only "//" positions survive such an element. Callers matching labels
// outside the compiled universe (the validator, the shredding evaluator)
// pass it to Step.
const UnknownLabel = ^uint32(0)

const unknownLabel = UnknownLabel

// PathNFA is a compiled path expression of the language
// P ::= ε | l | P/P | //. Matching tracks a set of positions into the
// code sequence; position i with a DescCode step can absorb any label and
// stay. Steps are the interner's compiled codes, so advancing the set
// costs integer compares only. The zero value is the compiled ε path
// (accepted at Start). Shared by the validator and the shredding
// evaluator so both planes match rule and key paths identically.
type PathNFA struct {
	codes []uint32
}

// CompilePath compiles p against the interner's code universe. All NFAs
// matched against the same label codes must share one interner.
func CompilePath(in *xpath.Interner, p xpath.Path) PathNFA {
	return PathNFA{codes: in.Codes(in.Intern(p))}
}

// Start returns the initial position set (ε-closure of position 0).
func (n PathNFA) Start() []int { return n.closure([]int{0}) }

// closure expands positions across "//" steps, which match the empty
// label sequence.
func (n PathNFA) closure(pos []int) []int {
	seen := make(map[int]bool, len(pos))
	var out []int
	var add func(p int)
	add = func(p int) {
		if seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p)
		if p < len(n.codes) && n.codes[p] == xpath.DescCode {
			add(p + 1)
		}
	}
	for _, p := range pos {
		add(p)
	}
	return out
}

// Step advances the position set over one element label code (an
// interner label code, or UnknownLabel for labels outside the universe).
func (n PathNFA) Step(pos []int, code uint32) []int {
	var next []int
	for _, p := range pos {
		if p >= len(n.codes) {
			continue
		}
		switch s := n.codes[p]; {
		case s == xpath.DescCode:
			next = append(next, p) // absorb the label, stay
		case s == code:
			next = append(next, p+1)
		}
	}
	return n.closure(next)
}

// Accepted reports whether the position set contains the final position.
func (n PathNFA) Accepted(pos []int) bool {
	for _, p := range pos {
		if p == len(n.codes) {
			return true
		}
	}
	return false
}

// frame is one open element on the stack.
type frame struct {
	label string
	// ctxPos[i] is key i's context-NFA position set at this element.
	ctxPos [][]int
	// contexts opened at this element (one per key for which this element
	// is a context node).
	contexts []*contextInstance
	// tgtPos[i] holds, for each active context of key i, that context's
	// target-NFA position set at this element.
	tgtPos []map[*contextInstance][]int
}

// contextInstance tracks one context node's key state.
type contextInstance struct {
	keyIdx int
	// seen maps the encoded key-value tuple to true.
	seen map[string]bool
	// path is the concrete label path of the context node (diagnostics).
	path string
}

// NewValidator compiles the key set. Keys must be of class K̄ (attribute
// key paths), which the xmlkey type guarantees.
func NewValidator(sigma []xmlkey.Key) *Validator {
	v := &Validator{in: xpath.NewInterner()}
	for _, k := range sigma {
		v.keys = append(v.keys, compiledKey{
			key:     k,
			context: CompilePath(v.in, k.Context),
			target:  CompilePath(v.in, k.Target),
		})
	}
	return v
}

// SetLimit stops collecting after n violations (0 = no limit). Once the
// cap is hit the validator also stops matching work — subsequent elements
// are tracked for stack balance only, no NFA stepping or frame allocation —
// and Run merely drains the rest of the stream for well-formedness.
func (v *Validator) SetLimit(n int) { v.limit = n }

// SetMaxDepth caps element nesting: Run fails with a *budget.Error
// (resource "stream depth") on the first element opening deeper than n
// (0 = no cap). A cap turns adversarially deep documents from a stack of
// per-element NFA frames into an early, typed refusal.
func (v *Validator) SetMaxDepth(n int) { v.maxDepth = n }

// saturated reports whether the violation limit has been reached.
func (v *Validator) saturated() bool {
	return v.limit > 0 && len(v.violations) >= v.limit
}

// Violations returns the violations collected so far.
func (v *Validator) Violations() []Violation { return v.violations }

// OK reports whether no violations have been found.
func (v *Validator) OK() bool { return len(v.violations) == 0 }

// Run consumes the whole document from r. It returns a *DecodeError on the
// first XML syntax or reader error and a *budget.Error if a SetMaxDepth
// cap is exceeded; key violations are collected, not returned as errors.
func (v *Validator) Run(r io.Reader) error {
	return v.RunCtx(nil, r)
}

// RunCtx is Run under a context: cancellation is checked once per token,
// and a budget attached via budget.With adds to the validator's own
// configuration — MaxStreamDepth tightens SetMaxDepth, and MaxViolations
// aborts the run with a *budget.Error once that many violations have been
// collected (unlike SetLimit, which saturates quietly and keeps draining).
// On any error the violations collected so far remain available from
// Violations(); the error is what marks them as possibly incomplete.
func (v *Validator) RunCtx(ctx context.Context, r io.Reader) error {
	maxViol := 0
	if b := budget.From(ctx); b != nil {
		if b.MaxStreamDepth > 0 && (v.maxDepth == 0 || b.MaxStreamDepth < v.maxDepth) {
			old := v.maxDepth
			v.maxDepth = b.MaxStreamDepth
			defer func() { v.maxDepth = old }()
		}
		maxViol = b.MaxViolations
	}
	dec := xml.NewDecoder(r)
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Capture the offset before consuming the token: InputOffset after
		// Token() points past the start tag, but Violation.Offset is
		// documented as where the offending element started. Before Token()
		// the decoder sits exactly where the previous token ended, which for
		// a StartElement is the byte of its '<' (CharData in between is its
		// own token).
		off := dec.InputOffset()
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &DecodeError{Offset: dec.InputOffset(), Err: err}
		}
		if err := v.Feed(tok, off); err != nil {
			return err
		}
		if maxViol > 0 && len(v.violations) >= maxViol {
			return budget.Exceeded("stream validation", budget.Violations, maxViol)
		}
	}
}

// Feed processes one already-decoded token whose first byte sits at
// offset, for callers that own the xml.Decoder loop themselves (the
// shredding pipeline validates and shreds in a single decoder pass).
// Start elements deeper than the SetMaxDepth cap return a *budget.Error;
// key violations are collected, not returned — poll Violations() between
// tokens. Tokens other than element boundaries are ignored.
func (v *Validator) Feed(tok xml.Token, offset int64) error {
	switch t := tok.(type) {
	case xml.StartElement:
		if v.maxDepth > 0 && len(v.stack)+v.skipDepth >= v.maxDepth {
			return budget.Exceeded("stream validation", budget.StreamDepth, v.maxDepth)
		}
		v.startElement(t, offset)
	case xml.EndElement:
		v.endElement()
	}
	return nil
}

// path renders the current stack as a label path (below the root).
func (v *Validator) path() string {
	if len(v.stack) <= 1 {
		return ""
	}
	labels := make([]string, 0, len(v.stack)-1)
	for _, f := range v.stack[1:] {
		labels = append(labels, f.label)
	}
	return strings.Join(labels, "/")
}

func (v *Validator) startElement(t xml.StartElement, offset int64) {
	// Past the violation limit no element can contribute anything: skip all
	// NFA and bookkeeping work, tracking depth only so endElement stays
	// balanced with the real frames beneath.
	if v.saturated() {
		v.skipDepth++
		return
	}
	label := t.Name.Local
	// One map lookup per start tag; labels absent from every key path get
	// the unknownLabel sentinel, which only "//" steps can absorb.
	code, known := v.in.LabelCode(label)
	if !known {
		code = unknownLabel
	}
	isRoot := len(v.stack) == 0

	f := &frame{
		label:  label,
		ctxPos: make([][]int, len(v.keys)),
		tgtPos: make([]map[*contextInstance][]int, len(v.keys)),
	}

	for i, ck := range v.keys {
		// Advance the context NFA: the root starts it; children advance
		// their parent's set by this label.
		if isRoot {
			f.ctxPos[i] = ck.context.Start()
		} else {
			parent := v.stack[len(v.stack)-1]
			f.ctxPos[i] = ck.context.Step(parent.ctxPos[i], code)
		}

		// Advance target NFAs of every active context of key i, and seed
		// this element's own context instance if the context NFA accepts.
		f.tgtPos[i] = make(map[*contextInstance][]int)
		if !isRoot {
			parent := v.stack[len(v.stack)-1]
			for ci, pos := range parent.tgtPos[i] {
				f.tgtPos[i][ci] = ck.target.Step(pos, code)
			}
		}
		if ck.context.Accepted(f.ctxPos[i]) {
			ci := &contextInstance{keyIdx: i, seen: make(map[string]bool)}
			f.contexts = append(f.contexts, ci)
			f.tgtPos[i][ci] = ck.target.Start()
		}
	}

	v.stack = append(v.stack, f)
	ciPath := v.path()

	// Check targets: for each key and active context whose target NFA
	// accepts here, this element is a target node.
	for i, ck := range v.keys {
		for ci, pos := range f.tgtPos[i] {
			if !ck.target.Accepted(pos) {
				continue
			}
			v.checkTarget(ck, ci, t, ciPath, offset)
		}
	}
	// Record context paths for diagnostics.
	for _, ci := range f.contexts {
		ci.path = ciPath
	}
}

func (v *Validator) checkTarget(ck compiledKey, ci *contextInstance, t xml.StartElement, path string, offset int64) {
	if v.limit > 0 && len(v.violations) >= v.limit {
		return
	}
	var tuple strings.Builder
	complete := true
	for _, a := range ck.key.Attrs {
		val, ok := attrValue(t, a)
		if !ok {
			v.violations = append(v.violations, Violation{
				Key: ck.key, Kind: xmlkey.MissingAttribute, Attr: a,
				Offset: offset, ContextPath: ci.path, TargetPath: path,
			})
			complete = false
			continue
		}
		fmt.Fprintf(&tuple, "%d:%s\x00", len(val), val)
	}
	if !complete {
		return
	}
	key := tuple.String()
	if ci.seen[key] {
		v.violations = append(v.violations, Violation{
			Key: ck.key, Kind: xmlkey.DuplicateKey,
			Offset: offset, ContextPath: ci.path, TargetPath: path,
		})
		return
	}
	ci.seen[key] = true
}

func (v *Validator) endElement() {
	if v.skipDepth > 0 {
		v.skipDepth--
		return
	}
	if len(v.stack) == 0 {
		return
	}
	// Closing an element retires the contexts it opened; their memory is
	// released here, which is what keeps the validator streaming.
	v.stack = v.stack[:len(v.stack)-1]
}

func attrValue(t xml.StartElement, name string) (string, bool) {
	for _, a := range t.Attr {
		if a.Name.Local == name {
			return a.Value, true
		}
	}
	return "", false
}

// Validate is a convenience one-shot: stream the document from r against
// sigma and return the violations (and any XML syntax error).
func Validate(r io.Reader, sigma []xmlkey.Key) ([]Violation, error) {
	v := NewValidator(sigma)
	if err := v.Run(r); err != nil {
		return v.Violations(), err
	}
	return v.Violations(), nil
}

// ValidateString is Validate over a string.
func ValidateString(s string, sigma []xmlkey.Key) ([]Violation, error) {
	return Validate(strings.NewReader(s), sigma)
}

// Package stream validates XML keys against a document in streaming
// fashion (one SAX-style pass over xmltok tokens) without materializing
// the tree. The paper's motivating scenario is large, fairly regular XML
// being transmitted for relational import; a consumer can reject a
// non-conforming feed the moment a key breaks, holding in memory only
// the open-element stack and, per active context, the key-value tuples
// seen so far (the minimum any sound checker must retain).
//
// Matching of the path language P ::= ε | l | P/P | // is performed
// incrementally: every path expression compiles to a position-set NFA
// ("//" = a position that may absorb any label) with ε-closures
// precomputed per position, pushed along the element stack, so each
// start-element costs O(|Σ| · depth · |paths|) word operations in the
// worst case and far less in practice.
//
// Tokens come from the xmltok plane: the zero-copy scanner by default,
// or the encoding/xml oracle via SetDecoder. Labels arrive pre-resolved
// to interner codes (Token.Code), the per-element frames and context
// instances are pooled, and paths are rendered only when a violation is
// actually recorded, so steady-state validation of a conforming document
// does not allocate per element.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xkprop/internal/budget"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltok"
	"xkprop/internal/xpath"
)

// DecodeError reports the stream breaking mid-document — malformed or
// truncated XML, an unsupported construct, or the underlying io.Reader
// failing. Offset is the byte position of the failure; Err (via Unwrap)
// is the tokenizer's or reader's error, so errors.Is sees
// io.ErrUnexpectedEOF and friends and errors.As sees *xml.SyntaxError
// and *xmltok.UnsupportedError.
type DecodeError struct {
	Offset int64
	Err    error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("stream: decode error at offset %d: %v", e.Offset, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// Violation is a key violation detected mid-stream.
type Violation struct {
	Key xmlkey.Key
	// Kind mirrors xmlkey's classification.
	Kind xmlkey.ViolationKind
	// Attr is the missing attribute for MissingAttribute violations.
	Attr string
	// Offset is the byte position in the input where the offending target
	// element's start tag begins (the position of its '<').
	Offset int64
	// ContextPath and TargetPath are the concrete label paths from the
	// document root, for diagnostics.
	ContextPath string
	TargetPath  string
}

func (v Violation) String() string {
	name := v.Key.Name
	if name == "" {
		name = v.Key.String()
	}
	switch v.Kind {
	case xmlkey.MissingAttribute:
		return fmt.Sprintf("%s: target /%s (context /%s) at offset %d lacks @%s",
			name, v.TargetPath, v.ContextPath, v.Offset, v.Attr)
	default:
		return fmt.Sprintf("%s: duplicate key values for target /%s under context /%s at offset %d",
			name, v.TargetPath, v.ContextPath, v.Offset)
	}
}

// Validator validates a fixed key set over one streamed document.
type Validator struct {
	keys []compiledKey
	// in is the path universe the key paths were compiled against; the
	// tokenizer resolves element labels to its integer codes (Token.Code),
	// so tokens fed to the validator must come from a Source built over
	// this interner (Run guarantees that; Feed callers must).
	in *xpath.Interner
	// decoder selects the tokenizer Run opens ("" = xmltok.DecoderFast).
	decoder string
	// stack of open elements. Frames are reused across pushes: popping
	// only reslices, and pushing reclaims the popped frame's slices.
	stack []frame
	// violations collected so far.
	violations []Violation
	// limit stops collecting after this many violations (0 = no limit).
	limit int
	// maxDepth rejects documents nesting deeper than this many open
	// elements (0 = no cap).
	maxDepth int
	// skipDepth counts open elements entered after the violation limit
	// saturated; they are tracked for stack balance only, with no NFA work.
	skipDepth int
	// ciFree recycles retired context instances (their seen maps cleared
	// but keeping their buckets), so repeated contexts don't churn maps.
	ciFree []*contextInstance
	// scratch is the reusable key-tuple encoding buffer.
	scratch []byte
}

// compiledKey precompiles a key's paths.
type compiledKey struct {
	key     xmlkey.Key
	context PathNFA
	target  PathNFA
}

// UnknownLabel marks an element label the interner has never seen: no
// compiled step can equal it (label codes are >= 1 and it is not DescCode),
// so only "//" positions survive such an element. It equals xmltok.NoCode,
// the code the tokenizer assigns labels outside the compiled universe.
const UnknownLabel = ^uint32(0)

// frame is one open element on the stack.
type frame struct {
	label string
	// ctxPos[i] is key i's context-NFA position set at this element.
	ctxPos []PosSet
	// contexts opened at this element (one per key for which this element
	// is a context node).
	contexts []*contextInstance
	// tgt holds one entry per (active context, live target-NFA set) pair
	// at this element. Dead (empty) sets are dropped on the way down.
	tgt []targetEntry
}

// targetEntry is one active context's target-NFA state at the current
// element.
type targetEntry struct {
	keyIdx int
	ci     *contextInstance
	set    PosSet
}

// contextInstance tracks one context node's key state.
type contextInstance struct {
	keyIdx int
	// depth is len(stack) at creation, its own frame included. The
	// context's label path is rendered from the stack below that depth
	// only when a violation is recorded — never on the hot path.
	depth int
	// seen maps the encoded key-value tuple to true.
	seen map[string]bool
}

// NewValidator compiles the key set against a fresh interner. Keys must
// be of class K̄ (attribute key paths), which the xmlkey type guarantees.
func NewValidator(sigma []xmlkey.Key) *Validator {
	return NewValidatorIn(xpath.NewInterner(), sigma)
}

// NewValidatorIn compiles the key set against an existing interner, for
// callers sharing one label universe across planes — the shredding
// pipeline compiles its rule paths and key paths into the same interner
// and feeds the validator from its own tokenizer Source.
func NewValidatorIn(in *xpath.Interner, sigma []xmlkey.Key) *Validator {
	v := &Validator{in: in}
	for _, k := range sigma {
		v.keys = append(v.keys, compiledKey{
			key:     k,
			context: CompilePath(in, k.Context),
			target:  CompilePath(in, k.Target),
		})
	}
	return v
}

// SetLimit stops collecting after n violations (0 = no limit). Once the
// cap is hit the validator also stops matching work — subsequent elements
// are tracked for stack balance only, no NFA stepping or frame work —
// and Run merely drains the rest of the stream for well-formedness.
func (v *Validator) SetLimit(n int) { v.limit = n }

// SetMaxDepth caps element nesting: Run fails with a *budget.Error
// (resource "stream depth") on the first element opening deeper than n
// (0 = no cap). A cap turns adversarially deep documents from a stack of
// per-element NFA frames into an early, typed refusal.
func (v *Validator) SetMaxDepth(n int) { v.maxDepth = n }

// SetDecoder selects the tokenizer Run uses: xmltok.DecoderFast (the
// default, also chosen by "") or xmltok.DecoderStd for the encoding/xml
// oracle. Unknown names are rejected here, not at Run time.
func (v *Validator) SetDecoder(name string) error {
	switch name {
	case "", xmltok.DecoderFast, xmltok.DecoderStd:
		v.decoder = name
		return nil
	}
	return fmt.Errorf("stream: unknown decoder %q (want %s or %s)", name, xmltok.DecoderFast, xmltok.DecoderStd)
}

// saturated reports whether the violation limit has been reached.
func (v *Validator) saturated() bool {
	return v.limit > 0 && len(v.violations) >= v.limit
}

// Violations returns the violations collected so far.
func (v *Validator) Violations() []Violation { return v.violations }

// OK reports whether no violations have been found.
func (v *Validator) OK() bool { return len(v.violations) == 0 }

// Run consumes the whole document from r. It returns a *DecodeError on the
// first XML syntax or reader error and a *budget.Error if a SetMaxDepth
// cap is exceeded; key violations are collected, not returned as errors.
func (v *Validator) Run(r io.Reader) error {
	return v.RunCtx(nil, r)
}

// RunCtx is Run under a context: cancellation is checked once per token,
// and a budget attached via budget.With adds to the validator's own
// configuration — MaxStreamDepth tightens SetMaxDepth, and MaxViolations
// aborts the run with a *budget.Error once that many violations have been
// collected (unlike SetLimit, which saturates quietly and keeps draining).
// On any error the violations collected so far remain available from
// Violations(); the error is what marks them as possibly incomplete.
func (v *Validator) RunCtx(ctx context.Context, r io.Reader) error {
	maxViol := 0
	if b := budget.From(ctx); b != nil {
		if b.MaxStreamDepth > 0 && (v.maxDepth == 0 || b.MaxStreamDepth < v.maxDepth) {
			old := v.maxDepth
			v.maxDepth = b.MaxStreamDepth
			defer func() { v.maxDepth = old }()
		}
		maxViol = b.MaxViolations
	}
	src, err := xmltok.Open(v.decoder, r, v.in)
	if err != nil {
		return err
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		tok, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return WrapTokenError(err)
		}
		if err := v.Feed(tok); err != nil {
			return err
		}
		if maxViol > 0 && len(v.violations) >= maxViol {
			return budget.Exceeded("stream validation", budget.Violations, maxViol)
		}
	}
}

// WrapTokenError converts a tokenizer failure into the package's typed
// *DecodeError, preserving the byte offset and the underlying cause.
func WrapTokenError(err error) error {
	var te *xmltok.Error
	if errors.As(err, &te) {
		return &DecodeError{Offset: te.Offset, Err: te.Err}
	}
	return &DecodeError{Err: err}
}

// Feed processes one already-decoded token, for callers that own the
// xmltok.Source loop themselves (the shredding pipeline validates and
// shreds in a single tokenizer pass). The token must come from a Source
// built over this validator's interner, so Token.Code lines up with the
// compiled NFAs. Start elements deeper than the SetMaxDepth cap return a
// *budget.Error; key violations are collected, not returned — poll
// Violations() between tokens. Tokens other than element boundaries are
// ignored. The token is not retained past the call.
func (v *Validator) Feed(tok *xmltok.Token) error {
	switch tok.Kind {
	case xmltok.StartElement:
		if v.maxDepth > 0 && len(v.stack)+v.skipDepth >= v.maxDepth {
			return budget.Exceeded("stream validation", budget.StreamDepth, v.maxDepth)
		}
		v.startElement(tok)
	case xmltok.EndElement:
		v.endElement()
	}
	return nil
}

// pathAt renders stack labels [1, depth) as a label path below the root.
func (v *Validator) pathAt(depth int) string {
	if depth <= 1 {
		return ""
	}
	n := depth - 2
	for i := 1; i < depth; i++ {
		n += len(v.stack[i].label)
	}
	var b strings.Builder
	b.Grow(n)
	for i := 1; i < depth; i++ {
		if i > 1 {
			b.WriteByte('/')
		}
		b.WriteString(v.stack[i].label)
	}
	return b.String()
}

// contextPath renders a context instance's label path for a violation.
// A context whose own element is the offender (depth equals the current
// stack) reports an empty path, matching the historical behavior of
// recording context paths only after the element's checks ran.
func (v *Validator) contextPath(ci *contextInstance) string {
	if ci.depth == len(v.stack) {
		return ""
	}
	return v.pathAt(ci.depth)
}

// pushFrame grows the stack by one, reusing the slices of a previously
// popped frame when the capacity is there.
func (v *Validator) pushFrame(label string) *frame {
	n := len(v.stack)
	if n < cap(v.stack) {
		v.stack = v.stack[:n+1]
	} else {
		v.stack = append(v.stack, frame{})
	}
	f := &v.stack[n]
	f.label = label
	if cap(f.ctxPos) < len(v.keys) {
		f.ctxPos = make([]PosSet, len(v.keys))
	} else {
		f.ctxPos = f.ctxPos[:len(v.keys)]
	}
	f.contexts = f.contexts[:0]
	f.tgt = f.tgt[:0]
	return f
}

// newContext takes a context instance from the free list or allocates
// one. Recycled instances keep their seen map's buckets (cleared at
// retirement), so contexts opened and closed in a loop stop allocating.
func (v *Validator) newContext(keyIdx int) *contextInstance {
	var ci *contextInstance
	if k := len(v.ciFree); k > 0 {
		ci = v.ciFree[k-1]
		v.ciFree = v.ciFree[:k-1]
	} else {
		ci = &contextInstance{seen: make(map[string]bool)}
	}
	ci.keyIdx = keyIdx
	ci.depth = len(v.stack)
	return ci
}

func (v *Validator) startElement(t *xmltok.Token) {
	// Past the violation limit no element can contribute anything: skip all
	// NFA and bookkeeping work, tracking depth only so endElement stays
	// balanced with the real frames beneath.
	if v.saturated() {
		v.skipDepth++
		return
	}
	isRoot := len(v.stack) == 0
	f := v.pushFrame(t.Label)

	// Advance the context NFAs: the root starts them; children advance
	// their parent's sets by this label's code (resolved by the tokenizer).
	for i := range v.keys {
		if isRoot {
			f.ctxPos[i] = v.keys[i].context.Start()
		} else {
			parent := &v.stack[len(v.stack)-2]
			f.ctxPos[i] = v.keys[i].context.Step(parent.ctxPos[i], t.Code)
		}
	}

	// Advance the target NFAs of every context active at the parent. An
	// empty result set is dead for the whole subtree and is dropped here,
	// so deep non-matching elements carry no per-context state at all.
	if !isRoot {
		parent := &v.stack[len(v.stack)-2]
		for _, te := range parent.tgt {
			next := v.keys[te.keyIdx].target.Step(te.set, t.Code)
			if next.Empty() {
				continue
			}
			f.tgt = append(f.tgt, targetEntry{keyIdx: te.keyIdx, ci: te.ci, set: next})
		}
	}

	// Seed this element's own context instances where the context NFA
	// accepts.
	for i := range v.keys {
		if v.keys[i].context.Accepted(f.ctxPos[i]) {
			ci := v.newContext(i)
			f.contexts = append(f.contexts, ci)
			f.tgt = append(f.tgt, targetEntry{keyIdx: i, ci: ci, set: v.keys[i].target.Start()})
		}
	}

	// Check targets: for each active context whose target NFA accepts
	// here, this element is a target node.
	for k := range f.tgt {
		te := &f.tgt[k]
		if v.keys[te.keyIdx].target.Accepted(te.set) {
			v.checkTarget(&v.keys[te.keyIdx], te.ci, t)
		}
	}
}

// appendTupleField appends one key-attribute value in the validator's
// length-prefixed tuple encoding, "<decimal length>:<bytes>\x00". The
// encoded form is pinned byte-for-byte by TestStreamTupleEncodingUnchanged:
// it must stay equal to the fmt.Fprintf("%d:%s\x00") form it replaced,
// since equal tuples are what defines a duplicate key.
func appendTupleField(dst, val []byte) []byte {
	dst = strconv.AppendInt(dst, int64(len(val)), 10)
	dst = append(dst, ':')
	dst = append(dst, val...)
	return append(dst, 0)
}

func (v *Validator) checkTarget(ck *compiledKey, ci *contextInstance, t *xmltok.Token) {
	if v.limit > 0 && len(v.violations) >= v.limit {
		return
	}
	tuple := v.scratch[:0]
	complete := true
	for _, a := range ck.key.Attrs {
		val, ok := attrValue(t, a)
		if !ok {
			v.violations = append(v.violations, Violation{
				Key: ck.key, Kind: xmlkey.MissingAttribute, Attr: a,
				Offset: t.Offset, ContextPath: v.contextPath(ci), TargetPath: v.pathAt(len(v.stack)),
			})
			complete = false
			continue
		}
		tuple = appendTupleField(tuple, val)
	}
	v.scratch = tuple
	if !complete {
		return
	}
	if ci.seen[string(tuple)] {
		v.violations = append(v.violations, Violation{
			Key: ck.key, Kind: xmlkey.DuplicateKey,
			Offset: t.Offset, ContextPath: v.contextPath(ci), TargetPath: v.pathAt(len(v.stack)),
		})
		return
	}
	ci.seen[string(tuple)] = true
}

func (v *Validator) endElement() {
	if v.skipDepth > 0 {
		v.skipDepth--
		return
	}
	if len(v.stack) == 0 {
		return
	}
	// Closing an element retires the contexts it opened; their tuple
	// memory is released (maps cleared, instances recycled) here, which
	// is what keeps the validator streaming.
	f := &v.stack[len(v.stack)-1]
	for _, ci := range f.contexts {
		clear(ci.seen)
		v.ciFree = append(v.ciFree, ci)
	}
	v.stack = v.stack[:len(v.stack)-1]
}

// attrValue finds an attribute by local name. Like the historical
// xml.StartElement matching, it does not special-case xmlns declarations:
// a key attribute named "xmlns" matches a namespace declaration.
func attrValue(t *xmltok.Token, name string) ([]byte, bool) {
	for i := range t.Attrs {
		if string(t.Attrs[i].Local) == name {
			return t.Attrs[i].Value, true
		}
	}
	return nil, false
}

// Validate is a convenience one-shot: stream the document from r against
// sigma and return the violations (and any XML syntax error).
func Validate(r io.Reader, sigma []xmlkey.Key) ([]Violation, error) {
	v := NewValidator(sigma)
	if err := v.Run(r); err != nil {
		return v.Violations(), err
	}
	return v.Violations(), nil
}

// ValidateString is Validate over a string.
func ValidateString(s string, sigma []xmlkey.Key) ([]Violation, error) {
	return Validate(strings.NewReader(s), sigma)
}

// Command xkmap evaluates a transformation over an XML document and emits relation instances.
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkmap(os.Args[1:], os.Stdout, os.Stderr))
}

// Command xkcheck validates an XML document against a set of XML keys.
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkcheck(os.Args[1:], os.Stdout, os.Stderr))
}

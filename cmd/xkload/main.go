// Command xkload shreds XML documents into relations through the
// streaming pipeline, enforcing propagated FDs as the tuples flow.
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkload(os.Args[1:], os.Stdout, os.Stderr))
}

// Command xksoak is the seeded chaos-soak harness for xkserve: it boots
// the service with the admission queue and compile circuit breaker armed,
// interposes a fault-injecting TCP proxy (latency, resets, truncation,
// slow-loris), drives a deterministic request mix through the retrying
// client, and asserts the resilience invariants — no goroutine leaks,
// monotonic counters, a single readiness transition at drain, typed error
// bodies only, and never a partial result. The same -seed replays the
// same fault and request schedule byte-for-byte. See internal/cli and
// internal/chaos for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXksoak(os.Args[1:], os.Stdout, os.Stderr))
}

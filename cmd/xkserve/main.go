// Command xkserve is the long-running constraint-propagation service: an
// HTTP/JSON API over a compiled-schema registry, serving key implication,
// FD propagation, minimum covers, candidate keys, DDL generation and
// streaming document validation. Run with -h for flags, or -smoke for the
// self-test; see internal/server and internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkserve(os.Args[1:], os.Stdout, os.Stderr))
}

// Command xkcover computes a minimum cover of propagated FDs and optional BCNF/3NF refinements.
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkcover(os.Args[1:], os.Stdout, os.Stderr))
}

// Command xkdiff cross-checks every redundant decision path of the
// system on seeded workloads and reports (shrunk) disagreements.
// Run with -h for usage; see internal/diffcheck for the harness.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkdiff(os.Args[1:], os.Stdout, os.Stderr))
}

// Command xkddl runs the consumer-side pipeline end to end: XML keys (or
// an XML Schema's identity constraints) plus a universal table rule become
// a minimum cover, a BCNF/3NF decomposition and SQL DDL.
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkddl(os.Args[1:], os.Stdout, os.Stderr))
}

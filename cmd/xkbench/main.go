// Command xkbench regenerates the paper's experiment series (Fig 7).
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkbench(os.Args[1:], os.Stdout, os.Stderr))
}

// Command xkprop checks XML key propagation for a relational FD.
// Run with -h for usage; see internal/cli for the implementation.
package main

import (
	"os"

	"xkprop/internal/cli"
)

func main() {
	os.Exit(cli.RunXkprop(os.Args[1:], os.Stdout, os.Stderr))
}

package xkprop

// This file is the bounded, fail-safe face of the API: context-aware
// variants of every long-running entry point, the resource-budget types
// they honor, and a recover guard that turns any internal invariant
// violation into an error instead of a crash in the caller's process.
//
// The contract shared by all ...Ctx functions: a nil error is the only
// guarantee that the result is complete. On cancellation (ctx.Err()) or
// budget exhaustion (*BudgetError) the result is the zero value — a
// partial cover or verdict is never returned as if complete.

import (
	"context"
	"fmt"
	"io"

	"xkprop/internal/budget"
	"xkprop/internal/core"
	"xkprop/internal/registry"
	"xkprop/internal/rel"
	"xkprop/internal/stream"
	"xkprop/internal/xmlkey"
)

// Budget caps the resources a bounded call may consume; the zero value is
// unlimited. Attach one to a context with WithBudget and pass it to any
// ...Ctx entry point.
type Budget = budget.Budget

// BudgetError is the typed error returned when a Budget limit is
// exhausted; match it with errors.As.
type BudgetError = budget.Error

// WithBudget returns a context carrying the budget; every ...Ctx entry
// point reads it back out.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return budget.With(ctx, b)
}

// PanicError wraps a panic recovered at the API boundary. The algorithms
// panic only on broken internal invariants ("impossible" states), so a
// PanicError is always a bug report — but it reaches the caller as an
// error, not a crash.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("xkprop: internal panic: %v", e.Value) }

// guard converts a panic into a *PanicError on the named return.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Value: r}
	}
}

// PropagatesCtx is Propagates under a context and budget.
func PropagatesCtx(ctx context.Context, sigma []Key, rule *Rule, fd FD) (ok bool, err error) {
	defer guard(&err)
	return core.PropagatesCtx(ctx, sigma, rule, fd)
}

// MinimumCoverCtx is MinimumCover under a context and budget.
func MinimumCoverCtx(ctx context.Context, sigma []Key, rule *Rule) (cover []FD, err error) {
	defer guard(&err)
	return core.NewEngine(sigma, rule).MinimumCoverCtx(ctx)
}

// NaiveCoverCtx is NaiveCover under a context and budget. Instead of
// NaiveCover's panic on wide schemas it returns a *BudgetError, with the
// field cap configurable via Budget.MaxEnumFields.
func NaiveCoverCtx(ctx context.Context, sigma []Key, rule *Rule) (cover []FD, err error) {
	defer guard(&err)
	return core.NewEngine(sigma, rule).NaiveCoverCtx(ctx)
}

// ImpliesKeyCtx is ImpliesKey under a context and budget
// (Budget.MaxMemoEntries and MaxInternEntries bound the decider's caches).
func ImpliesKeyCtx(ctx context.Context, sigma []Key, phi Key) (ok bool, err error) {
	defer guard(&err)
	return xmlkey.ImpliesCtx(ctx, sigma, phi)
}

// CandidateKeys enumerates all minimal keys of attrs under the FDs; limit
// caps the number returned (0 = no cap) and bounds the search itself.
func CandidateKeys(fds []FD, attrs AttrSet, limit int) []AttrSet {
	return rel.CandidateKeys(fds, attrs, limit)
}

// CandidateKeysCtx is CandidateKeys under a context and budget
// (Budget.MaxCandidateKeys caps candidates explored, not just returned).
// Uniquely among the ...Ctx entry points it returns its partial result
// alongside the error: the keys found so far are each genuinely minimal,
// only the enumeration's completeness is lost.
func CandidateKeysCtx(ctx context.Context, fds []FD, attrs AttrSet, limit int) (keys []AttrSet, err error) {
	defer guard(&err)
	return rel.CandidateKeysCtx(ctx, fds, attrs, limit)
}

// CompiledSchema is a schema compiled once and reused across requests: the
// parsed key set, the parsed transformation, the shared implication decider
// with its interned path universe, and lazily built per-rule engines. See
// SchemaRegistry for the cached, deduplicated way to obtain one.
type CompiledSchema = registry.Artifact

// SchemaRegistry is a content-hash-keyed cache of compiled schemas: each
// distinct (keys, transformation) source pair is parsed and compiled once,
// concurrent first requests are deduplicated singleflight-style, and
// residency is LRU-bounded. This is the serving-path entry point (see
// cmd/xkserve) — repeated analyses over one schema skip parsing, decider
// construction and cover builds entirely.
type SchemaRegistry = registry.Registry

// NewSchemaRegistry builds a registry holding at most maxEntries compiled
// schemas (0 = unbounded); Budget.MaxRegistryEntries is the same knob for
// budget-driven callers.
func NewSchemaRegistry(maxEntries int) *SchemaRegistry { return registry.New(maxEntries) }

// CompileSchema parses and compiles one schema outside any registry. The
// keys text is required; the transformation text may be empty for purely
// key-level work (implication, streaming validation).
func CompileSchema(keysText, transformText string) (cs *CompiledSchema, err error) {
	defer guard(&err)
	return registry.Compile(keysText, transformText)
}

// NewEngineSharing builds an engine for the rule that shares another
// engine's implication decider — its memo table, interned path universe and
// compiled containment kernel — so related rules (the tables of one
// transformation) warm each other's analyses.
func NewEngineSharing(e *Engine, rule *Rule) *Engine {
	return core.NewEngineWithDecider(e.Decider(), rule)
}

// StreamDecodeError is the typed error for a stream breaking mid-document:
// malformed XML, truncation, or the reader failing. Offset says where.
type StreamDecodeError = stream.DecodeError

// StreamValidateCtx is StreamValidate under a context and budget
// (Budget.MaxStreamDepth caps element nesting, Budget.MaxViolations aborts
// once that many violations are collected). The violations found before an
// abort are returned alongside the error.
func StreamValidateCtx(ctx context.Context, r io.Reader, sigma []Key) (vs []StreamViolation, err error) {
	return StreamValidateDecoderCtx(ctx, r, sigma, "")
}

// StreamValidateDecoderCtx is StreamValidateCtx with an explicit decoder:
// "fast" selects the zero-copy tokenizer (also the default for ""), "std"
// the encoding/xml oracle. Any other name is rejected before the document
// is read. Both decoders produce identical violation lists, offsets
// included; std is retained for differential checking.
func StreamValidateDecoderCtx(ctx context.Context, r io.Reader, sigma []Key, decoder string) (vs []StreamViolation, err error) {
	defer guard(&err)
	v := stream.NewValidator(sigma)
	if err = v.SetDecoder(decoder); err != nil {
		return nil, err
	}
	err = v.RunCtx(ctx, r)
	return v.Violations(), err
}

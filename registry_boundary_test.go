package xkprop_test

// Boundary coverage for the registry-aware entry points exported for
// xkserve and other embedders: CompileSchema's panic guard, registry
// hit/dedup behaviour through the facade types, and decider sharing via
// NewEngineSharing.

import (
	"context"
	"testing"

	"xkprop"
	"xkprop/internal/paperdata"
)

func TestCompileSchemaFacade(t *testing.T) {
	cs, err := xkprop.CompileSchema(paperdata.KeysText, paperdata.TransformText)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Sigma) == 0 || cs.Transform == nil {
		t.Fatalf("compiled schema incomplete: %d keys, transform=%v", len(cs.Sigma), cs.Transform)
	}
	eng, err := cs.Engine("chapter")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Decider() != cs.Decider() {
		t.Fatal("engine does not share the compiled schema's decider")
	}

	// Malformed inputs are errors with positions, never panics.
	if _, err := xkprop.CompileSchema("(ε, (//book", ""); err == nil {
		t.Fatal("truncated keys must fail")
	}
	if _, err := xkprop.CompileSchema(paperdata.KeysText, "rule {"); err == nil {
		t.Fatal("malformed transformation must fail")
	}
}

func TestSchemaRegistryFacade(t *testing.T) {
	r := xkprop.NewSchemaRegistry(8)
	ctx := context.Background()
	a, err := r.Get(ctx, paperdata.KeysText, paperdata.TransformText)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(ctx, paperdata.KeysText, paperdata.TransformText)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || r.Hits() != 1 || r.Compiles() != 1 {
		t.Fatalf("identical texts must dedup: hits=%d compiles=%d", r.Hits(), r.Compiles())
	}
}

// TestNewEngineSharingMemo pins the point of sharing: an engine built via
// NewEngineSharing reuses the donor's decider, so implication work done
// through one engine is memoized for the other.
func TestNewEngineSharingMemo(t *testing.T) {
	rule := paperdata.Transform().Rules[0]
	e1 := xkprop.NewEngine(paperdata.Keys(), rule)
	cover := e1.MinimumCover()
	if len(cover) == 0 {
		t.Fatal("empty cover for the paper example")
	}
	e2 := xkprop.NewEngineSharing(e1, rule)
	if e2.Decider() != e1.Decider() {
		t.Fatal("NewEngineSharing did not share the decider")
	}
	cover2 := e2.MinimumCover()
	if len(cover2) != len(cover) {
		t.Fatalf("shared-decider engine computed a different cover: %d vs %d", len(cover2), len(cover))
	}
}

package xkprop_test

// Acceptance tests for the bounded API: every long-running entry point
// must honor a 50 ms deadline on real workloads (the §6 grid, adversarial
// deep-// key sets), fail with ctx.Err() or a typed *BudgetError, and
// never return a partial cover as if it were complete. The panic guard at
// the boundary is pinned too: internal invariant violations surface as
// *PanicError, not a crash.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xkprop"
	"xkprop/internal/faultinject"
	"xkprop/internal/paperdata"
	"xkprop/internal/rel"
	"xkprop/internal/transform"
	"xkprop/internal/workload"
	"xkprop/internal/xmlkey"
)

// TestDeadlineOnSec6Grid runs MinimumCoverCtx over the paper's §6 grid up
// to fields=100 under one shared 50 ms deadline. The grid's total work is
// far beyond 50 ms on any machine, so the deadline must fire mid-grid —
// and when it does, the cover must be nil, never partial.
func TestDeadlineOnSec6Grid(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	sawDeadline := false
	for round := 0; round < 100 && !sawDeadline; round++ {
		for _, cfg := range workload.Sec6Grid(100) {
			w := workload.Generate(cfg)
			cover, err := xkprop.MinimumCoverCtx(ctx, w.Sigma, w.Rule)
			if err == nil {
				continue
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("fields=%d: err = %v, want context.DeadlineExceeded", cfg.Fields, err)
			}
			if cover != nil {
				t.Fatalf("fields=%d: aborted MinimumCoverCtx returned a partial cover", cfg.Fields)
			}
			sawDeadline = true
			break
		}
	}
	if !sawDeadline {
		t.Fatal("50 ms deadline never fired across the §6 grid")
	}
}

// deepSigma builds an adversarial key set over long //-laced paths; the
// implication decider's search space blows up on the prefix splits.
func deepSigma(n int) []xkprop.Key {
	var sigma []xkprop.Key
	for i := 0; i < n; i++ {
		sigma = append(sigma, xkprop.MustParseKey(fmt.Sprintf(
			"(//a%d//b//c%d, (//d//e%d//f, {@k%d}))", i, i, i%3, i%2)))
	}
	return sigma
}

// TestDeadlineOnDeepImplication hammers ImpliesKeyCtx with the adversarial
// deep-// set under one 50 ms deadline: the eventual failure must be the
// deadline itself or a typed *BudgetError, nothing else.
func TestDeadlineOnDeepImplication(t *testing.T) {
	sigma := deepSigma(12)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	for i := 0; i < 1_000_000; i++ {
		phi := xkprop.MustParseKey(fmt.Sprintf(
			"(//a%d//b//c%d, (//d//e%d//f//g//h, {@k%d}))", i%12, i%12, i%3, i%2))
		_, err := xkprop.ImpliesKeyCtx(ctx, sigma, phi)
		if err == nil {
			continue
		}
		var be *xkprop.BudgetError
		if !errors.Is(err, context.DeadlineExceeded) && !errors.As(err, &be) {
			t.Fatalf("iteration %d: err = %v, want deadline or *BudgetError", i, err)
		}
		return
	}
	t.Fatal("50 ms deadline never fired on the deep-// key set")
}

// TestBudgetErrorOnDeepImplication pins the typed budget path: a one-entry
// intern cap trips deterministically on the first deep query.
func TestBudgetErrorOnDeepImplication(t *testing.T) {
	sigma := deepSigma(8)
	ctx := xkprop.WithBudget(context.Background(), xkprop.Budget{MaxInternEntries: 1})
	phi := xkprop.MustParseKey("(//a0//b//c0, (//d//e0//f//g//h, {@k0}))")
	_, err := xkprop.ImpliesKeyCtx(ctx, sigma, phi)
	var be *xkprop.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
}

// TestNoPartialCoverUnderCountdown aborts MinimumCoverCtx at a sweep of
// deterministic cancellation points; an aborted call must never return a
// non-nil cover.
func TestNoPartialCoverUnderCountdown(t *testing.T) {
	w := workload.Generate(workload.Config{Fields: 20, Depth: 4, Keys: 6})
	for _, k := range []int64{1, 3, 10, 40} {
		ctx := faultinject.CountdownContext(context.Background(), k)
		cover, err := xkprop.MinimumCoverCtx(ctx, w.Sigma, w.Rule)
		if err != nil && cover != nil {
			t.Fatalf("k=%d: aborted call returned a partial cover of %d FDs", k, len(cover))
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: err = %v, want context.Canceled", k, err)
		}
	}
}

// TestAllCtxEntryPointsHonorCancellation sweeps every public ...Ctx entry
// point with a pre-cancelled context: each must fail with ctx.Err() (or,
// for the partial-result APIs, report it alongside whatever was found).
func TestAllCtxEntryPointsHonorCancellation(t *testing.T) {
	w := workload.Generate(workload.Config{Fields: 12, Depth: 3, Keys: 4})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := xkprop.PropagatesCtx(cancelled, w.Sigma, w.Rule, w.ProbeTrue); !errors.Is(err, context.Canceled) {
		t.Errorf("PropagatesCtx: err = %v", err)
	}
	if cover, err := xkprop.MinimumCoverCtx(cancelled, w.Sigma, w.Rule); !errors.Is(err, context.Canceled) || cover != nil {
		t.Errorf("MinimumCoverCtx: (%v, %v)", cover, err)
	}
	if cover, err := xkprop.NaiveCoverCtx(cancelled, w.Sigma, w.Rule); !errors.Is(err, context.Canceled) || cover != nil {
		t.Errorf("NaiveCoverCtx: (%v, %v)", cover, err)
	}
	// A deep phi outside sigma: membership and structural refutation both
	// short-circuit before any cancellation check, so force a real search.
	phi := xkprop.MustParseKey("(//a0//b//c0, (//d//e0//f//g//h, {@k0}))")
	if _, err := xkprop.ImpliesKeyCtx(cancelled, deepSigma(4), phi); !errors.Is(err, context.Canceled) {
		t.Errorf("ImpliesKeyCtx: err = %v", err)
	}
	fds := xkprop.MinimumCover(w.Sigma, w.Rule)
	attrs := xkprop.AttrSet{}
	for i := range w.Rule.Schema.Attrs {
		attrs = attrs.With(i)
	}
	if _, err := xkprop.CandidateKeysCtx(cancelled, fds, attrs, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("CandidateKeysCtx: err = %v", err)
	}
	if _, err := xkprop.StreamValidateCtx(cancelled, strings.NewReader("<r/>"), paperdata.Keys()); !errors.Is(err, context.Canceled) {
		t.Errorf("StreamValidateCtx: err = %v", err)
	}
}

// TestCtxEntryPointsMatchLegacy pins that under a background context every
// ...Ctx variant agrees with its legacy counterpart.
func TestCtxEntryPointsMatchLegacy(t *testing.T) {
	w := workload.Generate(workload.Config{Fields: 12, Depth: 3, Keys: 4})
	ctx := context.Background()

	for _, fd := range []xkprop.FD{w.ProbeTrue, w.ProbeFalse} {
		want := xkprop.Propagates(w.Sigma, w.Rule, fd)
		got, err := xkprop.PropagatesCtx(ctx, w.Sigma, w.Rule, fd)
		if err != nil || got != want {
			t.Fatalf("PropagatesCtx = (%v, %v), want (%v, nil)", got, err, want)
		}
	}
	want := xkprop.MinimumCover(w.Sigma, w.Rule)
	got, err := xkprop.MinimumCoverCtx(ctx, w.Sigma, w.Rule)
	if err != nil || !xkprop.EquivalentCovers(got, want) {
		t.Fatalf("MinimumCoverCtx disagrees with MinimumCover: %v", err)
	}
	naive, err := xkprop.NaiveCoverCtx(ctx, w.Sigma, w.Rule)
	if err != nil || !xkprop.EquivalentCovers(naive, want) {
		t.Fatalf("NaiveCoverCtx disagrees with MinimumCover: %v", err)
	}

	attrs := xkprop.AttrSet{}
	for i := range w.Rule.Schema.Attrs {
		attrs = attrs.With(i)
	}
	keys := xkprop.CandidateKeys(want, attrs, 0)
	keysCtx, err := xkprop.CandidateKeysCtx(ctx, want, attrs, 0)
	if err != nil || len(keys) != len(keysCtx) {
		t.Fatalf("CandidateKeysCtx = %d keys (%v), legacy = %d", len(keysCtx), err, len(keys))
	}
	for i := range keys {
		if !keys[i].Equal(keysCtx[i]) {
			t.Fatalf("candidate key %d differs between legacy and ctx paths", i)
		}
	}
}

// TestPanicGuardAtBoundary pins that an internal invariant violation (here
// a nil rule dereference) surfaces as a *PanicError, not a crash.
func TestPanicGuardAtBoundary(t *testing.T) {
	sigma := deepSigma(2)
	_, err := xkprop.MinimumCoverCtx(context.Background(), sigma, nil)
	var pe *xkprop.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value == nil {
		t.Fatal("PanicError.Value must carry the recovered value")
	}
}

// TestParseErrorsNotPanics pins the satellite contract: exported parse
// APIs return typed errors with position info; only Must* wrappers panic.
func TestParseErrorsNotPanics(t *testing.T) {
	_, err := xkprop.ParseKey("(//a, (//b, {@x)")
	var ke *xmlkey.ParseError
	if !errors.As(err, &ke) {
		t.Fatalf("ParseKey: err = %T %v, want *xmlkey.ParseError", err, err)
	}
	if ke.Pos < 0 || ke.Pos > len(ke.Input) {
		t.Fatalf("ParseError.Pos = %d out of range for %q", ke.Pos, ke.Input)
	}

	_, err = xkprop.ParseTransformationString("rule t(f: x) {\n  x := root / @a\n  x := root / @b\n}")
	var te *transform.ParseError
	if !errors.As(err, &te) {
		t.Fatalf("ParseTransformationString: err = %T %v, want *transform.ParseError", err, err)
	}

	// Document and path parsing likewise return errors, never panic.
	if _, err := xkprop.ParseDocumentString("<unclosed>"); err == nil {
		t.Error("ParseDocumentString on truncated XML must return an error")
	}
	if _, err := xkprop.ParsePath("a/@b/c"); err == nil {
		t.Error("ParsePath with a non-final attribute step must return an error")
	}

	// The rel parse APIs return errors naming the offending input; the
	// panicking forms are Must* wrappers only.
	s := rel.MustSchema("r", "a", "b")
	if _, err := rel.ParseFD(s, "a, b"); err == nil || !strings.Contains(err.Error(), "missing ->") {
		t.Errorf("ParseFD without arrow: err = %v", err)
	}
	if _, err := rel.ParseFD(s, "a -> zz"); err == nil || !strings.Contains(err.Error(), `"zz"`) {
		t.Errorf("ParseFD unknown attr: err = %v", err)
	}
	if _, err := s.Set("zz"); err == nil {
		t.Error("Schema.Set on unknown attribute must return an error")
	}
	if _, err := rel.NewSchema("r", "a", "a"); err == nil {
		t.Error("NewSchema with duplicate attribute must return an error")
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on malformed input", name)
			}
		}()
		f()
	}
	mustPanic("MustParseKey", func() { xkprop.MustParseKey("(") })
	mustPanic("MustParsePath", func() { xkprop.MustParsePath("a/@b/c") })
	mustPanic("transform.MustParseString", func() { transform.MustParseString("rule {") })
	mustPanic("rel.MustParseFD", func() { rel.MustParseFD(s, "a, b") })
	mustPanic("rel.MustSchema", func() { rel.MustSchema("r", "a", "a") })
	mustPanic("Schema.MustSet", func() { s.MustSet("zz") })
}

package xkprop_test

import (
	"strings"
	"testing"

	"xkprop"
	"xkprop/internal/paperdata"
)

// TestIntegrationXSDToSQL drives the full modern pipeline: XML Schema →
// K̄ keys → streaming validation → propagation with explanation →
// minimum cover → BCNF → SQL DDL, asserting consistency at every joint.
func TestIntegrationXSDToSQL(t *testing.T) {
	keys, warnings, err := xkprop.XSDImportString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="book" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="chapter" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="name"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
          <xs:key name="chapterKey">
            <xs:selector xpath="chapter"/>
            <xs:field xpath="@number"/>
          </xs:key>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
    <xs:key name="bookKey">
      <xs:selector xpath=".//book"/>
      <xs:field xpath="@isbn"/>
    </xs:key>
  </xs:element>
</xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	// The imported keys are φ1 and φ2 of the paper, plus the
	// occurrence-derived φ4 (each chapter has at most one name, from the
	// name declaration's default maxOccurs=1).
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}

	// They validate the paper's document — both tree-based and streaming.
	doc := paperdata.Doc()
	if !xkprop.SatisfiesKeys(doc, keys) {
		t.Fatal("Fig 1 must satisfy the imported keys")
	}
	if vs, err := xkprop.StreamValidate(strings.NewReader(paperdata.Fig1XML), keys); err != nil || len(vs) != 0 {
		t.Fatalf("stream: err=%v vs=%v", err, vs)
	}

	// Propagation over the Fig 2(b) design holds with just these two keys.
	rule := paperdata.Fig2bRule()
	fd, _ := xkprop.ParseFD(rule.Schema, "isbn, chapterNum -> chapterName")
	eng := xkprop.NewEngine(keys, rule)
	if !eng.Propagates(fd) {
		t.Fatal("imported keys must prove the refined design's key")
	}
	exs := eng.Explain(fd)
	if len(exs) != 1 || !exs[0].Propagated {
		t.Fatal("explanation must agree")
	}
	if !strings.Contains(exs[0].String(), "is keyed") {
		t.Errorf("explanation should narrate the keyed walk:\n%s", exs[0])
	}

	// Cover → BCNF → DDL on a universal rule.
	u := paperdata.UniversalRule()
	cover := xkprop.MinimumCover(keys, u)
	if len(cover) == 0 {
		t.Fatal("cover must be non-empty")
	}
	frags := xkprop.BCNF(cover, u.Schema.All())
	if !xkprop.LosslessJoin(cover, u.Schema.All(), frags) {
		t.Fatal("BCNF must be lossless")
	}
	ddl := xkprop.SQLDDL(xkprop.SQLFromFragments(u.Schema, frags, xkprop.SQLOptions{}), xkprop.SQLOptions{})
	if !strings.Contains(ddl, "CREATE TABLE") || !strings.Contains(ddl, "PRIMARY KEY") {
		t.Fatalf("DDL malformed:\n%s", ddl)
	}

	// Negative verdicts carry witnesses.
	bad, _ := xkprop.ParseFD(rule.Schema, "chapterNum -> chapterName")
	if eng.Propagates(bad) {
		t.Fatal("chapterNum alone must not be a key")
	}
	if _, _, found := xkprop.FindFDCounterexample(keys, rule, bad, xkprop.WitnessOptions{MaxTries: 20000}); !found {
		t.Fatal("no witness for the negative verdict")
	}
}

// TestIntegrationRootAttributeFields: fields populated from root
// attributes are constants — ∅ → field is propagated.
func TestIntegrationRootAttributeFields(t *testing.T) {
	tr, err := xkprop.ParseTransformationString(`
rule meta(version: v, vendor: w) {
  v := root / @version
  w := root / @vendor
}`)
	if err != nil {
		t.Fatal(err)
	}
	rule := tr.Rules[0]
	fd, _ := xkprop.ParseFD(rule.Schema, "-> version")
	if !xkprop.Propagates(nil, rule, fd) {
		t.Error("a root attribute is document-wide unique: ∅ → version must hold")
	}
	// And it holds on instances.
	doc, _ := xkprop.ParseDocumentString(`<r version="1" vendor="acme"><x/></r>`)
	inst := rule.Eval(doc)
	if len(inst.Tuples) != 1 || !inst.SatisfiesFD(fd) {
		t.Errorf("instance wrong:\n%s", inst)
	}
}

// TestIntegrationEngineReuseConsistency: a shared engine answers exactly
// like fresh engines across interleaved queries of all kinds.
func TestIntegrationEngineReuseConsistency(t *testing.T) {
	sigma := paperdata.Keys()
	u := paperdata.UniversalRule()
	shared := xkprop.NewEngine(sigma, u)
	queries := []string{
		"bookIsbn -> bookTitle",
		"bookTitle -> bookIsbn",
		"bookIsbn, chapNum -> chapName",
		"chapNum -> chapName",
		"bookIsbn, chapNum, secNum -> secName",
	}
	for _, q := range queries {
		fd, _ := xkprop.ParseFD(u.Schema, q)
		fresh := xkprop.NewEngine(sigma, u)
		if shared.Propagates(fd) != fresh.Propagates(fd) {
			t.Errorf("shared/fresh disagree on %s", q)
		}
		if shared.GPropagates(fd) != fresh.GPropagates(fd) {
			t.Errorf("shared/fresh GPropagates disagree on %s", q)
		}
	}
	// Cover is stable under repetition.
	c1 := shared.CoverAsStrings(shared.MinimumCover())
	c2 := shared.CoverAsStrings(shared.MinimumCover())
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("cover unstable: %v vs %v", c1, c2)
		}
	}
}

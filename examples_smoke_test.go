package xkprop_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun compiles and runs every example program, asserting on
// load-bearing output markers so the examples cannot rot silently.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test compiles binaries; skipped in -short")
	}
	cases := []struct {
		dir     string
		args    []string
		markers []string
	}{
		{"./examples/quickstart", nil, []string{
			"document satisfies all 7 XML keys",
			"inBook, number → name propagated: true",
			"bookIsbn, chapNum, secNum → secName",
			"lossless join: true",
		}},
		{"./examples/consumercheck", nil, []string{
			"VIOLATED on import",
			"culprits: book nodes",
			"refined key propagated: true",
		}},
		{"./examples/schemarefine", nil, []string{
			"orderId → custName",
			"itemSku, orderId → itemPrice propagated: true",
			"dependency preserving: true",
		}},
		{"./examples/bibliography", []string{"-journals", "5", "-fanout", "2"}, []string{
			"corpus satisfies all provider keys",
			"journal, pii, volume → title             propagated: true",
			"violation(s) detected at import time",
		}},
		{"./examples/schemaimport", []string{"-orders", "50"}, []string{
			"imported 3 keys",
			"streamed 50 orders: 0 violation(s)",
			"CREATE TABLE",
			"PROPAGATED",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", c.dir}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, m := range c.markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("output missing %q:\n%s", m, out)
				}
			}
		})
	}
}

package xkprop_test

import (
	"strings"
	"testing"

	"xkprop"
	"xkprop/internal/paperdata"
)

// TestFacadeEndToEnd drives the whole public API through the paper's
// running example: parse the document, keys and transformation; validate;
// evaluate; check propagation; compute the cover; normalize.
func TestFacadeEndToEnd(t *testing.T) {
	doc, err := xkprop.ParseDocumentString(paperdata.Fig1XML)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := xkprop.ParseKeys(strings.NewReader(paperdata.KeysText))
	if err != nil {
		t.Fatal(err)
	}
	if !xkprop.SatisfiesKeys(doc, sigma) {
		t.Fatalf("Fig 1 must satisfy Σ: %v", xkprop.ValidateKeys(doc, sigma))
	}
	tr, err := xkprop.ParseTransformationString(paperdata.TransformText)
	if err != nil {
		t.Fatal(err)
	}
	chapter := tr.Rule("chapter")
	fd, err := xkprop.ParseFD(chapter.Schema, "inBook, number -> name")
	if err != nil {
		t.Fatal(err)
	}
	if !xkprop.Propagates(sigma, chapter, fd) {
		t.Error("chapter key must be propagated")
	}

	// Cover + BCNF on the universal relation.
	u := paperdata.UniversalRule()
	cover := xkprop.MinimumCover(sigma, u)
	if len(cover) != 4 {
		t.Fatalf("cover size = %d, want 4:\n%s", len(cover), xkprop.FormatFDs(u.Schema, cover))
	}
	naive := xkprop.NaiveCover(sigma, u)
	if !xkprop.EquivalentCovers(cover, naive) {
		t.Error("naive and minimumCover must agree")
	}
	frags := xkprop.BCNF(cover, u.Schema.All())
	if !xkprop.LosslessJoin(cover, u.Schema.All(), frags) {
		t.Error("BCNF must be lossless")
	}
	three := xkprop.ThreeNF(cover, u.Schema.All())
	if !xkprop.PreservesDependencies(cover, three) {
		t.Error("3NF must preserve dependencies")
	}

	// Instance-level checks.
	inst := chapter.Eval(doc)
	if !inst.SatisfiesFD(fd) {
		t.Errorf("propagated FD must hold on the instance:\n%s", inst)
	}
}

func TestFacadeKeyUtilities(t *testing.T) {
	sigma, _ := xkprop.ParseKeys(strings.NewReader(paperdata.KeysText))
	if !xkprop.IsTransitiveKeySet(sigma) {
		t.Error("paper key set is transitive")
	}
	phi := xkprop.MustParseKey("(book, (chapter, {@number}))")
	if !xkprop.ImpliesKey(sigma, phi) {
		t.Error("context-contained key must be implied")
	}
	p := xkprop.MustParsePath("//book/@isbn")
	if p.String() != "//book/@isbn" {
		t.Errorf("path = %s", p)
	}
	if _, err := xkprop.ParsePath("@x/bad"); err == nil {
		t.Error("bad path should error")
	}
	if _, err := xkprop.ParseKey("nope"); err == nil {
		t.Error("bad key should error")
	}
}

func TestFacadeRelationalUtilities(t *testing.T) {
	s, err := xkprop.NewSchema("r", "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := xkprop.ParseFD(s, "a -> b")
	f2, _ := xkprop.ParseFD(s, "b -> c")
	f3, _ := xkprop.ParseFD(s, "a -> c")
	min := xkprop.MinimizeFDs([]xkprop.FD{f1, f2, f3})
	if len(min) != 2 {
		t.Errorf("minimized = %s", xkprop.FormatFDs(s, min))
	}
	if !xkprop.ImpliesFD(min, f3) {
		t.Error("transitivity lost")
	}
	key := xkprop.CandidateKey(min, s.All())
	if got := s.FormatSet(key); got != "{a}" {
		t.Errorf("candidate key = %s", got)
	}
	frags := xkprop.BCNF(min, s.All())
	if got := xkprop.FormatFragments(s, frags); !strings.Contains(got, "key") {
		t.Errorf("FormatFragments = %q", got)
	}
	if xkprop.V("x").Null || !xkprop.NullValue.Null {
		t.Error("value constructors wrong")
	}
	eng := xkprop.NewEngine(nil, paperdata.Fig2bRule())
	fd, _ := xkprop.ParseFD(paperdata.Fig2bRule().Schema, "isbn -> chapterName")
	if eng.Propagates(fd) {
		t.Error("nothing propagates from an empty key set except ε-derived facts")
	}
}

package xkprop

// This file exposes the supporting subsystems that grew around the core
// algorithms: XML Schema identity-constraint import, streaming key
// validation, SQL DDL generation from refinements, and counterexample
// search for negative verdicts.

import (
	"io"

	"xkprop/internal/core"
	"xkprop/internal/rel"
	"xkprop/internal/sqlgen"
	"xkprop/internal/stream"
	"xkprop/internal/transform"
	"xkprop/internal/witness"
	"xkprop/internal/xsd"
)

// XSDImport reads XML Schema identity constraints (xs:key, xs:unique) and
// converts the ones expressible in the paper's class K̄ into keys. The
// returned warnings note semantic strengthenings (xs:unique becomes
// existence-requiring under Definition 2.1's strict semantics).
func XSDImport(r io.Reader) (keys []Key, warnings []string, err error) {
	res, err := xsd.Import(r)
	if err != nil {
		return nil, nil, err
	}
	return res.Keys, res.Warnings, nil
}

// XSDImportString is XSDImport over a string.
func XSDImportString(s string) ([]Key, []string, error) {
	res, err := xsd.ImportString(s)
	if err != nil {
		return nil, nil, err
	}
	return res.Keys, res.Warnings, nil
}

// StreamViolation is a key violation found by the streaming validator.
type StreamViolation = stream.Violation

// StreamValidator validates keys over an XML token stream without
// materializing the tree; see NewStreamValidator.
type StreamValidator = stream.Validator

// NewStreamValidator compiles a key set for one-pass streaming validation
// of large documents (memory proportional to open contexts, not document
// size).
func NewStreamValidator(sigma []Key) *StreamValidator { return stream.NewValidator(sigma) }

// StreamValidate validates the document streamed from r against sigma in
// one pass. Key violations are returned; only XML syntax errors are errors.
func StreamValidate(r io.Reader, sigma []Key) ([]StreamViolation, error) {
	return stream.Validate(r, sigma)
}

// SQLOptions controls DDL generation.
type SQLOptions = sqlgen.Options

// SQLTable is one generated table.
type SQLTable = sqlgen.Table

// SQLFromFragments renders a decomposition of the universal schema as SQL
// tables: fragment keys become primary keys, key columns NOT NULL, and
// shared-key references become foreign keys.
func SQLFromFragments(s *Schema, frags []Fragment, opts SQLOptions) []SQLTable {
	return sqlgen.FromFragments(s, frags, opts)
}

// SQLFromSchema renders one relation schema with an explicit key.
func SQLFromSchema(s *Schema, key AttrSet, opts SQLOptions) SQLTable {
	return sqlgen.FromSchema(s, key, opts)
}

// SQLDDL renders tables as CREATE TABLE statements.
func SQLDDL(tables []SQLTable, opts SQLOptions) string { return sqlgen.DDL(tables, opts) }

// WitnessOptions tunes the counterexample search.
type WitnessOptions = witness.Options

// FindFDCounterexample searches for a document satisfying sigma whose
// instance under the rule violates fd — concrete evidence for a
// "not propagated" verdict. The search is sound but incomplete.
func FindFDCounterexample(sigma []Key, rule *Rule, fd FD, opts WitnessOptions) (*Tree, []rel.FDViolation, bool) {
	return witness.FDCounterexample(sigma, rule, fd, opts)
}

// FindKeyCounterexample searches for a document satisfying sigma but
// violating phi — a model refuting Σ ⊨ φ.
func FindKeyCounterexample(sigma []Key, phi Key, opts WitnessOptions) (*Tree, bool) {
	return witness.KeyCounterexample(sigma, phi, opts)
}

// Explanation records one run of Algorithm propagation step by step, the
// way the paper narrates Example 4.2. Negative verdicts become actionable:
// the failing keyed-ancestor check or undischargeable LHS field is named.
type Explanation = core.Explanation

// ExplanationStep is one recorded step of an explanation.
type ExplanationStep = core.Step

// Lineage maps each table-rule variable to the XML node it was bound to
// for one generated tuple (nil for null bindings); see
// Rule.EvalWithLineage for tracing relational findings back to XML nodes.
type Lineage = transform.Lineage

// AnnotatedFD pairs a cover FD with its provenance: the table-tree node
// its left-hand side identifies, the chain of Σ keys building that
// transitive key, and the uniqueness fact pinning the right-hand side
// (the paper's Example 5.1 made explicit). Produced by
// Engine.AnnotatedCover.
type AnnotatedFD = core.AnnotatedFD

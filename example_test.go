package xkprop_test

import (
	"fmt"
	"strings"

	"xkprop"
)

// The provider's documentation for its book feed: isbn identifies books
// globally; chapter numbers identify chapters within a book; chapters have
// at most one name.
const exampleKeys = `
(ε, (//book, {@isbn}))
(//book, (chapter, {@number}))
(//book/chapter, (name, {}))
(//book, (title, {}))
`

const exampleRules = `
rule chapter(inBook: y1, number: y2, name: y3) {
  ya := root / //book
  y1 := ya / @isbn
  yc := ya / chapter
  y2 := yc / @number
  y3 := yc / name
}
`

func ExamplePropagates() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader(exampleKeys))
	tr, _ := xkprop.ParseTransformationString(exampleRules)
	rule := tr.Rule("chapter")

	safe, _ := xkprop.ParseFD(rule.Schema, "inBook, number -> name")
	risky, _ := xkprop.ParseFD(rule.Schema, "number -> name")
	fmt.Println(xkprop.Propagates(sigma, rule, safe))
	fmt.Println(xkprop.Propagates(sigma, rule, risky))
	// Output:
	// true
	// false
}

func ExampleMinimumCover() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader(exampleKeys))
	tr, _ := xkprop.ParseTransformationString(`
rule U(isbn: i, title: t, chapNum: n, chapName: m) {
  b := root / //book
  i := b / @isbn
  t := b / title
  c := b / chapter
  n := c / @number
  m := c / name
}`)
	cover := xkprop.MinimumCover(sigma, tr.Rules[0])
	fmt.Print(xkprop.FormatFDs(tr.Rules[0].Schema, cover))
	// Output:
	// isbn → title
	// chapNum, isbn → chapName
}

func ExampleBCNF() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader(exampleKeys))
	tr, _ := xkprop.ParseTransformationString(`
rule U(isbn: i, title: t, chapNum: n, chapName: m) {
  b := root / //book
  i := b / @isbn
  t := b / title
  c := b / chapter
  n := c / @number
  m := c / name
}`)
	s := tr.Rules[0].Schema
	cover := xkprop.MinimumCover(sigma, tr.Rules[0])
	frags := xkprop.BCNF(cover, s.All())
	fmt.Print(xkprop.FormatFragments(s, frags))
	fmt.Println("lossless:", xkprop.LosslessJoin(cover, s.All(), frags))
	// Output:
	// R1(isbn, title) key {isbn}
	// R2(chapName, chapNum, isbn) key {chapNum, isbn}
	// lossless: true
}

func ExampleValidateKeys() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader("(ε, (//book, {@isbn}))"))
	doc, _ := xkprop.ParseDocumentString(`<r><book isbn="1"/><book isbn="1"/></r>`)
	for _, v := range xkprop.ValidateKeys(doc, sigma) {
		fmt.Println(v)
	}
	// Output:
	// (ε, (//book, {@isbn})): target nodes #1 and #3 under context node #0 agree on all key values
}

func ExampleImpliesKey() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader(exampleKeys))
	// Context containment: a key for //book is a key for book.
	phi := xkprop.MustParseKey("(ε, (book, {@isbn}))")
	fmt.Println(xkprop.ImpliesKey(sigma, phi))
	// But chapter numbers are not global keys.
	fmt.Println(xkprop.ImpliesKey(sigma, xkprop.MustParseKey("(ε, (//chapter, {@number}))")))
	// Output:
	// true
	// false
}

func ExampleStreamValidate() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader("(//order, (item, {@sku}))"))
	feed := `<orders>
	  <order id="1"><item sku="a"/><item sku="a"/></order>
	</orders>`
	vs, _ := xkprop.StreamValidate(strings.NewReader(feed), sigma)
	fmt.Println(len(vs), "violation(s)")
	// Output:
	// 1 violation(s)
}

func ExampleSQLDDL() {
	s, _ := xkprop.NewSchema("Chapter", "isbn", "chapterNum", "chapterName")
	table := xkprop.SQLFromSchema(s, s.MustSet("isbn", "chapterNum"), xkprop.SQLOptions{})
	fmt.Print(xkprop.SQLDDL([]xkprop.SQLTable{table}, xkprop.SQLOptions{}))
	// Output:
	// CREATE TABLE "Chapter" (
	//   "isbn" VARCHAR(1024) NOT NULL,
	//   "chapterNum" VARCHAR(1024) NOT NULL,
	//   "chapterName" VARCHAR(1024),
	//   PRIMARY KEY ("chapterNum", "isbn")
	// );
}

func ExampleXSDImportString() {
	keys, _, _ := xkprop.XSDImportString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="catalog">
    <xs:key name="bookKey">
      <xs:selector xpath=".//book"/>
      <xs:field xpath="@isbn"/>
    </xs:key>
  </xs:element>
</xs:schema>`)
	for _, k := range keys {
		fmt.Println(k)
	}
	// Output:
	// bookKey = (ε, (//book, {@isbn}))
}

func ExampleFindFDCounterexample() {
	sigma, _ := xkprop.ParseKeys(strings.NewReader(exampleKeys))
	tr, _ := xkprop.ParseTransformationString(`
rule Chapter(bookTitle: t, chapterNum: n, chapterName: m) {
  b := root / //book
  t := b / title
  c := b / chapter
  n := c / @number
  m := c / name
}`)
	rule := tr.Rules[0]
	fd, _ := xkprop.ParseFD(rule.Schema, "bookTitle, chapterNum -> chapterName")
	_, _, found := xkprop.FindFDCounterexample(sigma, rule, fd, xkprop.WitnessOptions{MaxTries: 20000})
	fmt.Println("counterexample found:", found)
	// Output:
	// counterexample found: true
}

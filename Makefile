GO ?= go
BENCH_JSON ?= BENCH_pathkernel.json
FUZZTIME ?= 30s

.PHONY: build test vet race stress fuzz-smoke bench bench-json serve-smoke diff-smoke verify help

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run uses -short: the §6 grid sweeps and the stress rounds are
# trimmed to representative points so the race detector stays fast on
# small machines (see internal/core/parallel_test.go).
race:
	$(GO) test -race -short ./...

# stress runs the fault-injection suites (countdown cancellation, budget
# exhaustion, concurrent abort consistency) under the race detector. They
# are a subset of 'race' but named here so a focused run is one command.
stress:
	$(GO) test -race -short -run 'Abort|Budget|Countdown|Cancel|Fault|Stress|Consistency|Poisoned' ./internal/core/ ./internal/xmlkey/ ./internal/stream/ ./internal/faultinject/ .

# fuzz-smoke gives each fuzz target a $(FUZZTIME) budget over the checked-in
# corpora (testdata/fuzz/). Go allows one -fuzz target per run, hence the
# three invocations.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseKey -fuzztime=$(FUZZTIME) ./internal/xmlkey/
	$(GO) test -run='^$$' -fuzz=FuzzParseTransformation -fuzztime=$(FUZZTIME) ./internal/transform/
	$(GO) test -run='^$$' -fuzz=FuzzStreamValidator -fuzztime=$(FUZZTIME) ./internal/stream/

# bench runs the testing.B suite with allocation counters and then
# regenerates the machine-readable minimum-cover trajectory (§6 grid,
# sequential and parallel) via xkbench -json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(MAKE) bench-json

bench-json:
	$(GO) run ./cmd/xkbench -json $(BENCH_JSON)

# serve-smoke boots a real xkserve on an ephemeral port and drives every
# endpoint over TCP: second identical propagation request must be a
# registry hit (no recompilation), ?timeout=1ns must be a typed 504 with
# no partial cover, /debug/vars must expose per-endpoint latency
# histograms. See internal/cli/servesmoke.go.
serve-smoke:
	$(GO) run ./cmd/xkserve -smoke

# diff-smoke runs the differential cross-check harness on a pinned seed:
# every redundant decision path (compiled kernel vs recursive oracle,
# minimumCover vs naive, sequential vs parallel, in-process vs a live
# xkserve over TCP, verdicts vs searched witnesses) must agree on the
# smoke grid, time-budgeted so CI cannot hang. Exit 1 means a shrunk
# disagreement was printed — replay it with the same -seed.
diff-smoke:
	$(GO) run ./cmd/xkdiff -seed 1 -cases 10 -timeout 5m

# Tier-1 verification (ROADMAP.md): build, vet, tests, the race run (which
# includes the fault-injection stress suites), the focused stress pass,
# the xkserve end-to-end smoke, and the differential cross-check smoke. If
# a committed bench trajectory is present, smoke-check that it is
# well-formed pathkernel JSON.
verify: build vet test race stress serve-smoke diff-smoke
	@if [ -f $(BENCH_JSON) ]; then $(GO) run ./cmd/xkbench -check-json $(BENCH_JSON); fi

help:
	@echo "Targets:"
	@echo "  build       go build ./..."
	@echo "  test        go test ./..."
	@echo "  vet         go vet ./..."
	@echo "  race        full test suite under -race -short"
	@echo "  stress      fault-injection suites only, under -race -short"
	@echo "  fuzz-smoke  run each fuzz target for FUZZTIME (default 30s)"
	@echo "  bench       testing.B suite + xkbench -json trajectory"
	@echo "  bench-json  regenerate $(BENCH_JSON) only"
	@echo "  serve-smoke boot xkserve on an ephemeral port and drive every endpoint"
	@echo "  diff-smoke  cross-check every redundant decision path on a pinned seed"
	@echo "  verify      build + vet + test + race + stress + serve-smoke + diff-smoke + bench JSON check"

GO ?= go
BENCH_JSON ?= BENCH_pathkernel.json
BENCH_FDCLOSURE_JSON ?= BENCH_fdclosure.json
BENCH_SHRED_JSON ?= BENCH_shred.json
BENCH_TOKENIZER_JSON ?= BENCH_tokenizer.json
FUZZTIME ?= 30s

.PHONY: build test vet race stress fuzz-smoke bench bench-json bench-fdclosure bench-shred bench-tok bench-check serve-smoke diff-smoke soak-smoke load-smoke verify help

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run uses -short: the §6 grid sweeps and the stress rounds are
# trimmed to representative points so the race detector stays fast on
# small machines (see internal/core/parallel_test.go).
race:
	$(GO) test -race -short ./...

# stress runs the fault-injection suites (countdown cancellation, budget
# exhaustion, concurrent abort consistency) under the race detector. They
# are a subset of 'race' but named here so a focused run is one command.
stress:
	$(GO) test -race -short -run 'Abort|Budget|Countdown|Cancel|Fault|Stress|Consistency|Poisoned|Queue|Breaker' ./internal/core/ ./internal/xmlkey/ ./internal/stream/ ./internal/faultinject/ ./internal/resilience/ ./internal/server/ .

# fuzz-smoke gives each fuzz target a $(FUZZTIME) budget over the checked-in
# corpora (testdata/fuzz/). Go allows one -fuzz target per run, hence the
# five invocations.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseKey -fuzztime=$(FUZZTIME) ./internal/xmlkey/
	$(GO) test -run='^$$' -fuzz=FuzzParseTransformation -fuzztime=$(FUZZTIME) ./internal/transform/
	$(GO) test -run='^$$' -fuzz=FuzzStreamValidator -fuzztime=$(FUZZTIME) ./internal/stream/
	$(GO) test -run='^$$' -fuzz=FuzzLinClosure -fuzztime=$(FUZZTIME) ./internal/rel/
	$(GO) test -run='^$$' -fuzz=FuzzTokenizerParity -fuzztime=$(FUZZTIME) ./internal/xmltok/

# bench runs the testing.B suite with allocation counters and then
# regenerates both machine-readable trajectories: the minimum-cover §6
# grid (xkbench -json) and the FD-closure micro-grid (-suite fdclosure).
bench:
	$(GO) test -bench=. -benchmem ./...
	$(MAKE) bench-json
	$(MAKE) bench-fdclosure

bench-json:
	$(GO) run ./cmd/xkbench -json $(BENCH_JSON)

bench-fdclosure:
	$(GO) run ./cmd/xkbench -suite fdclosure -json $(BENCH_FDCLOSURE_JSON)

bench-shred:
	$(GO) run ./cmd/xkbench -suite shred -json $(BENCH_SHRED_JSON)

# bench-tok regenerates the tokenizer trajectory: fast vs std throughput
# and allocation counts over the corpus, with the in-run parity gate
# (CompareDoc must agree on every corpus document) and the zero-alloc
# steady-state gate enforced before the file is written.
bench-tok:
	$(GO) run ./cmd/xkbench -suite tokenizer -json $(BENCH_TOKENIZER_JSON)

# bench-check re-runs the fdclosure suite on the current build and fails
# if any point is more than 25% slower (ns/op) than the committed
# baseline. ns/op is machine-dependent, so this is a manual target for
# the machine that produced the baseline — it is deliberately NOT part
# of `make verify`. Pass BENCH_FDCLOSURE_JSON=... to check another file
# (a pathkernel baseline works too: the suite marker is dispatched).
bench-check:
	$(GO) run ./cmd/xkbench -check-against $(BENCH_FDCLOSURE_JSON)

# serve-smoke boots a real xkserve on an ephemeral port and drives every
# endpoint over TCP: second identical propagation request must be a
# registry hit (no recompilation), ?timeout=1ns must be a typed 504 with
# no partial cover, /debug/vars must expose per-endpoint latency
# histograms. See internal/cli/servesmoke.go.
serve-smoke:
	$(GO) run ./cmd/xkserve -smoke

# diff-smoke runs the differential cross-check harness on a pinned seed:
# every redundant decision path (compiled kernel vs recursive oracle,
# minimumCover vs naive, sequential vs parallel, in-process vs a live
# xkserve over TCP, verdicts vs searched witnesses, indexed vs fixpoint
# closure, streaming shredder vs tree evaluator with propagated-FD
# soundness, zero-copy tokenizer vs encoding/xml adapter token for
# token) must agree on the smoke grid, time-budgeted so CI cannot
# hang. Exit 1 means a shrunk disagreement was printed — replay it with
# the same -seed.
diff-smoke:
	$(GO) run ./cmd/xkdiff -seed 1 -cases 10 -timeout 5m

# soak-smoke runs a short seeded chaos soak: xkserve with the admission
# queue and compile breaker armed, behind a fault-injecting proxy
# (latency, resets, truncation, slow-loris), hammered by retrying
# clients. PASS requires zero invariant breaches: no goroutine leaks,
# monotonic counters, one readiness transition at drain, typed error
# bodies only, no partial results. Replay a failure with the printed
# seed; `-duration 60s -workers 32` is the full soak (EXPERIMENTS.md).
soak-smoke:
	$(GO) run ./cmd/xksoak -seed 1 -duration 5s -workers 8

# load-smoke drives the streaming shredding pipeline end to end: a
# generated workload shredded at workers=1 and workers=4 must produce
# byte-identical CSV output with the exact expected tuple count, a
# key-violating fixture must be rejected with a typed FDViolation
# carrying lineage, and no pipeline goroutine may outlive the run. See
# internal/cli/xkload.go (runLoadSmoke).
load-smoke:
	$(GO) run ./cmd/xkload -smoke

# Tier-1 verification (ROADMAP.md): build, vet, tests, the race run (which
# includes the fault-injection stress suites), the focused stress pass,
# the xkserve end-to-end smoke, the differential cross-check smoke, the
# short chaos soak, and the shredding-pipeline smoke. If a committed
# bench trajectory is present, smoke-check that it is well-formed JSON
# for its suite.
verify: build vet test race stress serve-smoke diff-smoke soak-smoke load-smoke
	@if [ -f $(BENCH_JSON) ]; then $(GO) run ./cmd/xkbench -check-json $(BENCH_JSON); fi
	@if [ -f $(BENCH_FDCLOSURE_JSON) ]; then $(GO) run ./cmd/xkbench -check-json $(BENCH_FDCLOSURE_JSON); fi
	@if [ -f $(BENCH_SHRED_JSON) ]; then $(GO) run ./cmd/xkbench -check-json $(BENCH_SHRED_JSON); fi
	@if [ -f $(BENCH_TOKENIZER_JSON) ]; then $(GO) run ./cmd/xkbench -check-json $(BENCH_TOKENIZER_JSON); fi

help:
	@echo "Targets:"
	@echo "  build           go build ./..."
	@echo "  test            go test ./..."
	@echo "  vet             go vet ./..."
	@echo "  race            full test suite under -race -short"
	@echo "  stress          fault-injection suites only, under -race -short"
	@echo "  fuzz-smoke      run each fuzz target for FUZZTIME (default 30s)"
	@echo "  bench           testing.B suite + both xkbench JSON trajectories"
	@echo "  bench-json      regenerate $(BENCH_JSON) only"
	@echo "  bench-fdclosure regenerate $(BENCH_FDCLOSURE_JSON) only (FD-closure micro-grid)"
	@echo "  bench-shred     regenerate $(BENCH_SHRED_JSON) only (streaming shredding grid)"
	@echo "  bench-tok       regenerate $(BENCH_TOKENIZER_JSON) only (fast vs std tokenizer corpus)"
	@echo "  bench-check     re-run the fdclosure suite and fail on >25% ns/op regression"
	@echo "                  vs the committed $(BENCH_FDCLOSURE_JSON); same-machine baselines"
	@echo "                  only, so it is manual and not part of verify"
	@echo "  serve-smoke     boot xkserve on an ephemeral port and drive every endpoint"
	@echo "  diff-smoke      cross-check every redundant decision path on a pinned seed"
	@echo "  soak-smoke      short seeded chaos soak of xkserve behind the fault proxy"
	@echo "  load-smoke      end-to-end shredding pipeline smoke (determinism, rejection, leaks)"
	@echo "  verify          build + vet + test + race + stress + serve-smoke + diff-smoke + soak-smoke + load-smoke + bench JSON checks"

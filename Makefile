GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run uses -short: the §6 grid sweeps and the stress rounds are
# trimmed to representative points so the race detector stays fast on
# small machines (see internal/core/parallel_test.go).
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Tier-1 verification (ROADMAP.md).
verify: build vet test race

GO ?= go
BENCH_JSON ?= BENCH_pathkernel.json

.PHONY: build test vet race bench bench-json verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run uses -short: the §6 grid sweeps and the stress rounds are
# trimmed to representative points so the race detector stays fast on
# small machines (see internal/core/parallel_test.go).
race:
	$(GO) test -race -short ./...

# bench runs the testing.B suite with allocation counters and then
# regenerates the machine-readable minimum-cover trajectory (§6 grid,
# sequential and parallel) via xkbench -json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(MAKE) bench-json

bench-json:
	$(GO) run ./cmd/xkbench -json $(BENCH_JSON)

# Tier-1 verification (ROADMAP.md). If a committed bench trajectory is
# present, smoke-check that it is well-formed pathkernel JSON.
verify: build vet test race
	@if [ -f $(BENCH_JSON) ]; then $(GO) run ./cmd/xkbench -check-json $(BENCH_JSON); fi

// Package xkprop is the public API of the xkprop library, a from-scratch
// implementation of "Propagating XML Constraints to Relations" (Davidson,
// Fan, Hara, Qin — ICDE 2003).
//
// The library answers two questions about relational storage of XML data:
//
//  1. Given XML keys Σ and a transformation σ from XML to relations, is a
//     relational functional dependency guaranteed to hold on every
//     generated instance? (Propagates — Algorithm propagation)
//  2. Given a universal relation defined by one table rule, what is a
//     minimum cover of all FDs propagated from Σ? (MinimumCover —
//     Algorithm minimumCover), from which BCNF/3NF refinements follow.
//
// The package re-exports the building blocks: the path language (Path),
// XML trees (Tree), XML keys of class K̄ (Key), table rules and
// transformations (Rule, Transformation), relational schemas, FDs and
// instances (Schema, FD, Relation), and the propagation engine (Engine).
//
// # Quick start
//
//	doc, _ := xkprop.ParseDocument(strings.NewReader(xmlData))
//	sigma, _ := xkprop.ParseKeys(strings.NewReader(`
//		(ε, (//book, {@isbn}))
//		(//book, (chapter, {@number}))`))
//	tr, _ := xkprop.ParseTransformation(strings.NewReader(`
//		rule chapter(inBook: y1, number: y2, name: y3) {
//		  ya := root / //book
//		  y1 := ya / @isbn
//		  yc := ya / chapter
//		  y2 := yc / @number
//		  y3 := yc / name
//		}`))
//	rule := tr.Rule("chapter")
//	fd, _ := xkprop.ParseFD(rule.Schema, "inBook, number -> name")
//	ok := xkprop.Propagates(sigma, rule, fd) // true
//
// See the examples/ directory for complete programs.
package xkprop

import (
	"io"

	"xkprop/internal/core"
	"xkprop/internal/rel"
	"xkprop/internal/transform"
	"xkprop/internal/xmlkey"
	"xkprop/internal/xmltree"
	"xkprop/internal/xpath"
)

// Core types, re-exported as aliases so values flow freely between the
// public API and the internal packages.
type (
	// Path is a path expression of the language P ::= ε | l | P/P | //.
	Path = xpath.Path
	// Key is an XML key (Q, (Q', {@a1..@ak})) of class K̄.
	Key = xmlkey.Key
	// Violation reports how a document fails a key.
	Violation = xmlkey.Violation
	// Tree is an XML tree; Node is one of its nodes.
	Tree = xmltree.Tree
	// Node is a node of an XML tree.
	Node = xmltree.Node
	// Schema is a relation schema.
	Schema = rel.Schema
	// AttrSet is a set of schema attribute positions.
	AttrSet = rel.AttrSet
	// FD is a functional dependency X → Y.
	FD = rel.FD
	// FDViolation reports how an instance fails an FD.
	FDViolation = rel.FDViolation
	// Relation is a relation instance with nulls.
	Relation = rel.Relation
	// Tuple is one row of a relation instance.
	Tuple = rel.Tuple
	// Value is a field value (string or NULL).
	Value = rel.Value
	// Fragment is one relation of a normalization decomposition.
	Fragment = rel.Fragment
	// Rule is a table rule; its tree form is the paper's table tree.
	Rule = transform.Rule
	// FieldRule is a field rule f: value(x).
	FieldRule = transform.FieldRule
	// VarMapping is a variable mapping x ⇐ y/P.
	VarMapping = transform.VarMapping
	// Transformation is a set of table rules.
	Transformation = transform.Transformation
	// Engine runs the propagation and cover algorithms over one (Σ, rule)
	// pair, reusing implication caches across queries.
	Engine = core.Engine
)

// ParsePath parses a path expression, e.g. "//book/chapter/@number".
func ParsePath(s string) (Path, error) { return xpath.Parse(s) }

// MustParsePath is ParsePath but panics on error.
func MustParsePath(s string) Path { return xpath.MustParse(s) }

// ParseKey parses one key, e.g. "(ε, (//book, {@isbn}))".
func ParseKey(s string) (Key, error) { return xmlkey.Parse(s) }

// MustParseKey is ParseKey but panics on error.
func MustParseKey(s string) Key { return xmlkey.MustParse(s) }

// ParseKeys reads a key set, one key per line ('#' comments allowed).
func ParseKeys(r io.Reader) ([]Key, error) { return xmlkey.ParseSet(r) }

// ParseDocument reads an XML document into a Tree.
func ParseDocument(r io.Reader) (*Tree, error) { return xmltree.Parse(r) }

// ParseDocumentString is ParseDocument over a string.
func ParseDocumentString(s string) (*Tree, error) { return xmltree.ParseString(s) }

// ParseTransformation reads a transformation in the table-rule DSL.
func ParseTransformation(r io.Reader) (*Transformation, error) { return transform.Parse(r) }

// ParseTransformationString is ParseTransformation over a string.
func ParseTransformationString(s string) (*Transformation, error) {
	return transform.ParseString(s)
}

// ParseFD parses "a, b -> c" against a schema.
func ParseFD(s *Schema, text string) (FD, error) { return rel.ParseFD(s, text) }

// NewSchema builds a relation schema.
func NewSchema(name string, attrs ...string) (*Schema, error) { return rel.NewSchema(name, attrs...) }

// NewEngine builds a propagation engine for a key set and a table rule.
func NewEngine(sigma []Key, rule *Rule) *Engine { return core.NewEngine(sigma, rule) }

// Propagates reports whether the FD is propagated from sigma via the rule
// (Algorithm propagation, §4 of the paper). For repeated queries over the
// same inputs, build an Engine once and call its Propagates method.
func Propagates(sigma []Key, rule *Rule, fd FD) bool {
	return core.Propagates(sigma, rule, fd)
}

// MinimumCover computes a minimum cover of all FDs on the rule's
// (universal) relation propagated from sigma (Algorithm minimumCover, §5).
func MinimumCover(sigma []Key, rule *Rule) []FD {
	return core.NewEngine(sigma, rule).MinimumCover()
}

// NaiveCover computes the same cover with the exponential baseline
// (Algorithm naive, §5). It refuses schemas with more than 24 fields.
func NaiveCover(sigma []Key, rule *Rule) []FD {
	return core.NewEngine(sigma, rule).NaiveCover()
}

// ValidateKeys checks a document against a key set and returns all
// violations (Definition 2.1's satisfaction semantics).
func ValidateKeys(t *Tree, sigma []Key) []Violation {
	return xmlkey.ValidateAll(t, sigma)
}

// SatisfiesKeys reports whether the document satisfies every key.
func SatisfiesKeys(t *Tree, sigma []Key) bool { return xmlkey.SatisfiesAll(t, sigma) }

// ImpliesKey reports whether sigma implies phi (Σ ⊨ φ, §4).
func ImpliesKey(sigma []Key, phi Key) bool { return xmlkey.Implies(sigma, phi) }

// IsTransitiveKeySet reports whether sigma is a transitive set (§4).
func IsTransitiveKeySet(sigma []Key) bool { return xmlkey.IsTransitive(sigma) }

// MinimizeFDs computes a non-redundant cover with singleton right-hand
// sides and no extraneous attributes (the paper's minimize()).
func MinimizeFDs(fds []FD) []FD { return rel.Minimize(fds) }

// ImpliesFD reports whether the FDs imply f under Armstrong's axioms.
func ImpliesFD(fds []FD, f FD) bool { return rel.Implies(fds, f) }

// FDIndex is a compiled attribute→dependency index over one FD list: the
// counter-based linear-time closure (LINCLOSURE) with an optional bounded
// closure-set cache. Compile once per FD list, query from any number of
// goroutines.
type FDIndex = rel.FDIndex

// NewFDIndex compiles an FDIndex over the FD list.
func NewFDIndex(fds []FD) *FDIndex { return rel.NewFDIndex(fds) }

// EquivalentCovers reports whether two FD sets have the same closure.
func EquivalentCovers(f, g []FD) bool { return rel.EquivalentCovers(f, g) }

// BCNF decomposes the attribute set into Boyce–Codd normal form under the
// FDs (the refinement step of Examples 1.2/3.1).
func BCNF(fds []FD, attrs AttrSet) []Fragment { return rel.BCNF(fds, attrs) }

// ThreeNF synthesizes a lossless, dependency-preserving 3NF decomposition.
func ThreeNF(fds []FD, attrs AttrSet) []Fragment { return rel.ThreeNF(fds, attrs) }

// LosslessJoin tests a decomposition for the lossless-join property.
func LosslessJoin(fds []FD, attrs AttrSet, frags []Fragment) bool {
	return rel.LosslessJoin(fds, attrs, frags)
}

// PreservesDependencies tests a decomposition for dependency preservation.
func PreservesDependencies(fds []FD, frags []Fragment) bool {
	return rel.PreservesDependencies(fds, frags)
}

// CandidateKey returns one minimal key of attrs under the FDs.
func CandidateKey(fds []FD, attrs AttrSet) AttrSet { return rel.CandidateKey(fds, attrs) }

// FormatFDs renders FDs with attribute names, one per line, sorted.
func FormatFDs(s *Schema, fds []FD) string { return rel.FormatFDs(s, fds) }

// FormatFragments renders a decomposition with attribute names.
func FormatFragments(s *Schema, frags []Fragment) string { return rel.FormatFragments(s, frags) }

// NullValue is the relational NULL.
var NullValue = rel.NullValue

// V builds a non-null value.
func V(s string) Value { return rel.V(s) }

// Bibliography runs the pipeline at scale on a synthetic bibliography
// corpus (the workload class the paper's introduction motivates: large,
// fairly regular XML exchanged between providers and relational consumers).
//
//	go run ./examples/bibliography [-journals N] [-fanout N]
//
// It generates a corpus, validates the provider's keys, shreds the corpus
// into relations, verifies that every propagated FD holds on the generated
// instances (as the theory guarantees), and demonstrates that a
// deliberately broken feed is caught by key validation.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"xkprop"
)

const bibKeys = `
(ε, (//journal, {@issn}))
(//journal, (volume, {@no}))
(//journal/volume, (article, {@pii}))
(//journal, (title, {}))
(//journal/volume/article, (title, {}))
(//journal/volume/article, (doi, {}))
(//journal/volume/article/title, (text, {}))
(//journal/volume/article/doi, (text, {}))
`

const bibRules = `
rule journal(issn: ji, title: jt) {
  j := root / //journal
  ji := j / @issn
  jt := j / title
}

rule article(journal: ai, volume: av, pii: ap, title: at, doi: ad) {
  j := root / //journal
  ai := j / @issn
  v := j / volume
  av := v / @no
  a := v / article
  ap := a / @pii
  t := a / title
  at := t / text
  d := a / doi
  ad := d / text
}
`

// Note: article rule reads title/doi through a nested text element to
// exercise multi-step leaf paths.

func generateCorpus(journals, fanout int, r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<bib>\n")
	pii := 0
	for j := 0; j < journals; j++ {
		fmt.Fprintf(&b, `  <journal issn="%04d-%04d"><title>Journal %d</title>`+"\n", j, r.Intn(10000), j)
		for v := 0; v < fanout; v++ {
			fmt.Fprintf(&b, `    <volume no="%d">`+"\n", v+1)
			for a := 0; a < fanout; a++ {
				pii++
				fmt.Fprintf(&b, `      <article pii="S%06d"><title><text>Paper %d</text></title><doi><text>10.1000/%d</text></doi></article>`+"\n", pii, pii, pii)
			}
			b.WriteString("    </volume>\n")
		}
		b.WriteString("  </journal>\n")
	}
	b.WriteString("</bib>\n")
	return b.String()
}

func main() {
	journals := flag.Int("journals", 20, "number of journals in the corpus")
	fanout := flag.Int("fanout", 4, "volumes per journal and articles per volume")
	flag.Parse()

	r := rand.New(rand.NewSource(42))
	corpus := generateCorpus(*journals, *fanout, r)
	tree, err := xkprop.ParseDocumentString(corpus)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := xkprop.ParseKeys(strings.NewReader(bibKeys))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := xkprop.ParseTransformationString(bibRules)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d journals, %d nodes\n", *journals, tree.Size())
	if vs := xkprop.ValidateKeys(tree, sigma); len(vs) != 0 {
		log.Fatalf("corpus violates keys: %v", vs[0])
	}
	fmt.Println("corpus satisfies all provider keys")

	// Shred and report instance sizes.
	insts := tr.Eval(tree)
	for _, name := range []string{"journal", "article"} {
		fmt.Printf("  %s: %d tuples\n", name, len(insts[name].Tuples))
	}

	// Propagation: which keys carry over to the article table?
	article := tr.Rule("article")
	eng := xkprop.NewEngine(sigma, article)
	for _, text := range []string{
		"journal, volume, pii -> title",
		"journal, volume, pii -> doi",
		"journal -> title",
		"pii -> title",
	} {
		fd, err := xkprop.ParseFD(article.Schema, text)
		if err != nil {
			log.Fatal(err)
		}
		verdict := eng.Propagates(fd)
		fmt.Printf("  %-40s propagated: %v\n", fd.Format(article.Schema), verdict)
		if verdict && !insts["article"].SatisfiesFD(fd) {
			log.Fatalf("THEORY VIOLATION: %s fails on instance", text)
		}
	}

	// A corrupted feed (duplicate pii within a volume) is caught upstream,
	// before it ever breaks the relational key.
	bad := strings.Replace(corpus, `pii="S000002"`, `pii="S000001"`, 1)
	badTree, err := xkprop.ParseDocumentString(bad)
	if err != nil {
		log.Fatal(err)
	}
	vs := xkprop.ValidateKeys(badTree, sigma)
	fmt.Printf("\ncorrupted feed: %d key violation(s) detected at import time\n", len(vs))
	if len(vs) > 0 {
		fmt.Println("  " + vs[0].String())
	}
}

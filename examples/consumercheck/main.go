// Consumercheck replays the data-exchange story of Example 1.1: a consumer
// imports an XML feed into a predefined relational design and wants to know
// whether its declared key can ever break.
//
//	go run ./examples/consumercheck
//
// The initial design Chapter(bookTitle, chapterNum, chapterName) fails on
// the sample data (Fig 2a); the refined design Chapter(isbn, chapterNum,
// chapterName) happens to work on this data set (Fig 2b) — and key
// propagation *proves* it can never fail, for any document satisfying the
// provider's keys, settling the designers' doubt.
package main

import (
	"fmt"
	"log"
	"strings"

	"xkprop"
)

const feed = `<r>
  <book isbn="123">
    <title>XML</title>
    <chapter number="1"><name>Introduction</name></chapter>
    <chapter number="10"><name>Conclusion</name></chapter>
  </book>
  <book isbn="234">
    <title>XML</title>
    <chapter number="1"><name>Getting Acquainted</name></chapter>
  </book>
</r>`

const providerKeys = `
(ε, (//book, {@isbn}))
(//book, (chapter, {@number}))
(//book, (title, {}))
(//book/chapter, (name, {}))
`

const initialDesign = `
rule Chapter(bookTitle: t, chapterNum: n, chapterName: m) {
  b := root / //book
  t := b / title
  c := b / chapter
  n := c / @number
  m := c / name
}
`

const refinedDesign = `
rule Chapter(isbn: i, chapterNum: n, chapterName: m) {
  b := root / //book
  i := b / @isbn
  c := b / chapter
  n := c / @number
  m := c / name
}
`

func main() {
	tree, err := xkprop.ParseDocumentString(feed)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := xkprop.ParseKeys(strings.NewReader(providerKeys))
	if err != nil {
		log.Fatal(err)
	}

	// --- Initial design: import and watch the key break (Fig 2a). ---
	initial := mustRule(initialDesign)
	inst, lineage := initial.EvalWithLineage(tree)
	fmt.Println("initial design import:")
	fmt.Print(inst)
	key, _ := xkprop.ParseFD(initial.Schema, "bookTitle, chapterNum -> chapterName")
	if vs := inst.CheckFD(key); len(vs) > 0 {
		fmt.Printf("declared key %s VIOLATED on import:\n", key.Format(initial.Schema))
		for _, v := range vs {
			fmt.Println("  " + v.String())
			// Lineage points back at the clashing XML nodes.
			b1, b2 := lineage[v.Rows[0]]["b"], lineage[v.Rows[1]]["b"]
			i1, _ := b1.AttrValue("isbn")
			i2, _ := b2.AttrValue("isbn")
			fmt.Printf("  culprits: book nodes #%d (isbn %s) and #%d (isbn %s) share a title\n",
				b1.ID, i1, b2.ID, i2)
		}
	}

	// --- Refined design: the data imports cleanly (Fig 2b)... ---
	refined := mustRule(refinedDesign)
	inst2 := refined.Eval(tree)
	fmt.Println("\nrefined design import:")
	fmt.Print(inst2)
	key2, _ := xkprop.ParseFD(refined.Schema, "isbn, chapterNum -> chapterName")
	fmt.Printf("declared key %s holds on this data set: %v\n",
		key2.Format(refined.Schema), inst2.SatisfiesFD(key2))

	// --- ...but were the designers lucky, or safe for every future feed?
	fmt.Println("\nkey propagation verdicts (for ALL documents satisfying the provider keys):")
	fmt.Printf("  initial key propagated: %v\n", xkprop.Propagates(sigma, initial, key))
	fmt.Printf("  refined key propagated: %v\n", xkprop.Propagates(sigma, refined, key2))
	fmt.Println("\nthe refined design is provably safe — no future conforming feed can break it")
}

func mustRule(src string) *xkprop.Rule {
	tr, err := xkprop.ParseTransformationString(src)
	if err != nil {
		log.Fatal(err)
	}
	return tr.Rules[0]
}

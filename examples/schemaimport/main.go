// Schemaimport runs the modern tool-chain variant of the paper's pipeline:
// the provider documents its feed with an XML Schema (whose identity
// constraints fall in the paper's key class K̄); the consumer imports those
// constraints, streams a large feed through the one-pass validator, and
// derives a normalized SQL schema with provable keys.
//
//	go run ./examples/schemaimport [-orders N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"xkprop"
)

const providerXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="orders">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="order" maxOccurs="unbounded">
          <xs:key name="itemKey">
            <xs:selector xpath="item"/>
            <xs:field xpath="@sku"/>
          </xs:key>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
    <xs:key name="orderKey">
      <xs:selector xpath=".//order"/>
      <xs:field xpath="@id"/>
    </xs:key>
    <xs:unique name="warehouseUnique">
      <xs:selector xpath=".//item"/>
      <xs:field xpath="@warehouse"/>
    </xs:unique>
  </xs:element>
</xs:schema>`

const universalRule = `
rule PO(orderId: oi, itemSku: sk, itemWh: wh, itemQty: qt) {
  o := root / //order
  oi := o / @id
  it := o / item
  sk := it / @sku
  wh := it / @warehouse
  qt := it / @qty
}
`

func makeFeed(orders int, corrupt bool) string {
	var b strings.Builder
	b.WriteString("<orders>\n")
	wh := 0
	for i := 0; i < orders; i++ {
		fmt.Fprintf(&b, `  <order id="o%d">`+"\n", i)
		for j := 0; j < 3; j++ {
			sku := fmt.Sprintf("sku%d", j)
			if corrupt && i == orders/2 && j == 2 {
				sku = "sku1" // duplicate within the order
			}
			wh++
			fmt.Fprintf(&b, `    <item sku="%s" warehouse="w%d" qty="%d"/>`+"\n", sku, wh, 1+j)
		}
		b.WriteString("  </order>\n")
	}
	b.WriteString("</orders>\n")
	return b.String()
}

func main() {
	orders := flag.Int("orders", 1000, "number of orders in the synthetic feed")
	flag.Parse()

	// 1. Import the provider's identity constraints as K̄ keys.
	keys, warnings, err := xkprop.XSDImportString(providerXSD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d keys from the provider's XML Schema:\n", len(keys))
	for _, k := range keys {
		fmt.Println("  " + k.String())
	}
	for _, w := range warnings {
		fmt.Println("  note: " + w)
	}

	// 2. Stream-validate a large feed in one pass.
	feed := makeFeed(*orders, false)
	vs, err := xkprop.StreamValidate(strings.NewReader(feed), keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed %d orders: %d violation(s)\n", *orders, len(vs))

	// A corrupted feed is rejected mid-stream.
	bad := makeFeed(*orders, true)
	vs, err = xkprop.StreamValidate(strings.NewReader(bad), keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted feed: %d violation(s), first: %s\n", len(vs), vs[0])

	// 3. Derive the relational design: cover, BCNF, SQL.
	tr, err := xkprop.ParseTransformationString(universalRule)
	if err != nil {
		log.Fatal(err)
	}
	u := tr.Rules[0]
	cover := xkprop.MinimumCover(keys, u)
	fmt.Printf("\npropagated FD cover (%d):\n%s", len(cover), xkprop.FormatFDs(u.Schema, cover))
	frags := xkprop.BCNF(cover, u.Schema.All())
	opts := xkprop.SQLOptions{Dialect: "sqlite", TablePrefix: "po_"}
	fmt.Println("\ngenerated DDL:")
	fmt.Print(xkprop.SQLDDL(xkprop.SQLFromFragments(u.Schema, frags, opts), opts))

	// 4. Spot-check a propagation question with an explanation.
	eng := xkprop.NewEngine(keys, u)
	fd, _ := xkprop.ParseFD(u.Schema, "orderId, itemSku -> itemQty")
	for _, ex := range eng.Explain(fd) {
		fmt.Println()
		fmt.Print(ex.String())
	}
}

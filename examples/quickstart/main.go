// Quickstart: the full xkprop pipeline on the paper's running example
// (Davidson et al., ICDE 2003, Fig 1 / Examples 1.1–3.1).
//
//	go run ./examples/quickstart
//
// It parses an XML document, a set of XML keys and a transformation;
// validates the keys; evaluates the transformation; checks FD propagation
// for a predefined design; and computes the minimum cover plus a BCNF
// refinement for a from-scratch design.
package main

import (
	"fmt"
	"log"
	"strings"

	"xkprop"
)

const doc = `<r>
  <book isbn="123">
    <author><name>Tim Bray</name><contact>tim@textuality.com</contact></author>
    <title>XML</title>
    <chapter number="1">
      <name>Introduction</name>
      <section number="1"><name>Fundamentals</name></section>
      <section number="2"><name>Attributes</name></section>
    </chapter>
    <chapter number="10"><name>Conclusion</name></chapter>
  </book>
  <book isbn="234">
    <title>XML</title>
    <chapter number="1"><name>Getting Acquainted</name></chapter>
  </book>
</r>`

const keys = `
# Example 2.1: the provider documents these keys for its XML feed.
φ1 = (ε, (//book, {@isbn}))
φ2 = (//book, (chapter, {@number}))
φ3 = (//book, (title, {}))
φ4 = (//book/chapter, (name, {}))
φ5 = (//book/chapter/section, (name, {}))
φ6 = (//book/chapter, (section, {@number}))
φ7 = (//book, (author/contact, {}))
`

const rules = `
# Example 2.4: how the consumer shreds the feed into relations.
rule chapter(inBook: y1, number: y2, name: y3) {
  ya := root / //book
  y1 := ya / @isbn
  yc := ya / chapter
  y2 := yc / @number
  y3 := yc / name
}
`

const universal = `
# Example 3.1: a universal relation for from-scratch design.
rule U(bookIsbn: x1, bookTitle: x2, bookAuthor: x4, authContact: x5, chapNum: y1, chapName: y2, secNum: z1, secName: z2) {
  xb := root / //book
  x1 := xb / @isbn
  x2 := xb / title
  x3 := xb / author
  x4 := x3 / name
  x5 := x3 / contact
  yc := xb / chapter
  y1 := yc / @number
  y2 := yc / name
  zs := yc / section
  z1 := zs / @number
  z2 := zs / name
}
`

func main() {
	// 1. Parse everything.
	tree, err := xkprop.ParseDocumentString(doc)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := xkprop.ParseKeys(strings.NewReader(keys))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := xkprop.ParseTransformationString(rules)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Validate the document against the provider's keys.
	if vs := xkprop.ValidateKeys(tree, sigma); len(vs) > 0 {
		log.Fatalf("document violates its keys: %v", vs)
	}
	fmt.Println("document satisfies all", len(sigma), "XML keys")

	// 3. Evaluate the transformation (shred into relations).
	chapter := tr.Rule("chapter")
	inst := chapter.Eval(tree)
	fmt.Println()
	fmt.Print(inst)

	// 4. Is the intended key of chapter guaranteed by the XML keys?
	fd, err := xkprop.ParseFD(chapter.Schema, "inBook, number -> name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s propagated: %v\n", fd.Format(chapter.Schema),
		xkprop.Propagates(sigma, chapter, fd))

	// 5. From-scratch design: minimum cover over a universal relation,
	//    then BCNF.
	ut, err := xkprop.ParseTransformationString(universal)
	if err != nil {
		log.Fatal(err)
	}
	u := ut.Rules[0]
	cover := xkprop.MinimumCover(sigma, u)
	fmt.Printf("\nminimum cover of all propagated FDs (%d):\n%s", len(cover),
		xkprop.FormatFDs(u.Schema, cover))
	frags := xkprop.BCNF(cover, u.Schema.All())
	fmt.Printf("\nBCNF refinement:\n%s", xkprop.FormatFragments(u.Schema, frags))
	fmt.Printf("lossless join: %v\n", xkprop.LosslessJoin(cover, u.Schema.All(), frags))
}

// Schemarefine demonstrates from-scratch relational design for XML storage
// (Examples 1.2 and 3.1 of the paper), on a purchase-order feed: start with
// a universal relation mapping everything of interest, infer the minimum
// cover of FDs propagated from the provider's XML keys, and decompose into
// BCNF and 3NF.
//
//	go run ./examples/schemarefine
package main

import (
	"fmt"
	"log"
	"strings"

	"xkprop"
)

// The provider ships purchase orders: each order is identified by @id;
// within an order, items are identified by @sku; each order has at most
// one customer and each customer one name; warehouses are globally
// identified by @code and every item carries one.
const orderKeys = `
(ε, (//order, {@id}))
(//order, (item, {@sku}))
(//order, (customer, {}))
(//order/customer, (name, {}))
(ε, (//warehouse, {@code}))
(//order/item, (price, {}))
`

// Universal relation: one wide table over orders, items and customers.
const universal = `
rule PO(orderId: oi, custName: cn, itemSku: sk, itemPrice: pr, itemQty: qt) {
  o := root / //order
  oi := o / @id
  c := o / customer
  cn := c / name
  it := o / item
  sk := it / @sku
  pr := it / price
  qt := it / @qty
}
`

func main() {
	tr, err := xkprop.ParseTransformationString(universal)
	if err != nil {
		log.Fatal(err)
	}
	u := tr.Rules[0]
	sigma, err := xkprop.ParseKeys(strings.NewReader(orderKeys))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("universal relation %s(%s)\n", u.Schema.Name, strings.Join(u.Schema.Attrs, ", "))
	fmt.Printf("provider keys:\n")
	for _, k := range sigma {
		fmt.Println("  " + k.String())
	}

	cover := xkprop.MinimumCover(sigma, u)
	fmt.Printf("\nminimum cover of propagated FDs (%d):\n%s", len(cover),
		xkprop.FormatFDs(u.Schema, cover))

	// The cover drives both classic refinements.
	all := u.Schema.All()
	bcnf := xkprop.BCNF(cover, all)
	fmt.Printf("\nBCNF decomposition (lossless: %v):\n%s",
		xkprop.LosslessJoin(cover, all, bcnf), xkprop.FormatFragments(u.Schema, bcnf))

	three := xkprop.ThreeNF(cover, all)
	fmt.Printf("\n3NF synthesis (lossless: %v, dependency preserving: %v):\n%s",
		xkprop.LosslessJoin(cover, all, three),
		xkprop.PreservesDependencies(cover, three),
		xkprop.FormatFragments(u.Schema, three))

	// Sanity: what single FD would a DBA naturally ask about?
	fd, _ := xkprop.ParseFD(u.Schema, "orderId, itemSku -> itemPrice")
	fmt.Printf("\nspot check: %s propagated: %v\n", fd.Format(u.Schema),
		xkprop.Propagates(sigma, u, fd))
	fd2, _ := xkprop.ParseFD(u.Schema, "itemSku -> itemPrice")
	fmt.Printf("            %s propagated: %v (skus repeat across orders)\n",
		fd2.Format(u.Schema), xkprop.Propagates(sigma, u, fd2))
}
